"""Per-table shared/exclusive lock manager with deadlock handling.

The multi-writer concurrency protocol (strict two-phase locking):

* A transaction takes an **S** (shared) lock on a table the first time
  it reads from it and an **X** (exclusive) lock the first time it
  writes to it — upgrading S to X in place when the first write follows
  a read.  Locks are acquired incrementally as tables are touched and
  held until the transaction ends; the commit path releases them only
  **after** the commit record is durable per the WAL's fsync policy
  (2PL held through the log write), so conflicting transactions
  serialize in WAL order while disjoint transactions commit in
  parallel and share one group fsync.
* Autocommit mutations take an ephemeral X lock on their single table
  for the duration of the mutation envelope (apply + journal).
* Snapshot-view readers take no lock-manager locks at all — they read
  copy-on-write snapshots (MVCC readers).

Deadlock handling is wait-for-graph cycle detection with a configurable
timeout fallback.  Every waiter re-runs detection when it parks (and on
each wait slice), so a cycle is found the moment its last edge appears.
The victim is the **youngest** transaction on the cycle (highest owner
id — owner ids are allocated monotonically), which is marked and woken;
it raises :class:`DeadlockError` from its pending acquisition, rolls
back cleanly through its undo log (rollback only touches tables the
victim already holds X on, so it can never block), and may retry.
A waiter that exhausts ``timeout`` seconds without a grant raises
:class:`DeadlockError` as well — the fallback for anything the graph
cannot see (e.g. an owner wedged outside the lock manager).

The wait-for-graph state (``_holders``, ``_waiting``, ``_victims``) is
owned by this module alone and mutated only under ``_cond`` — the
invariant linter's ``lock-discipline`` rule enforces the module
boundary the same way it guards ``Table._rows``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from .errors import ConstraintError, DeadlockError

__all__ = [
    "LockManager",
    "LOCK_SHARED",
    "LOCK_EXCLUSIVE",
    "DEFAULT_LOCK_TIMEOUT",
]

LOCK_SHARED = "S"
LOCK_EXCLUSIVE = "X"

#: Fallback lock-wait timeout (seconds).  Genuine deadlocks are broken
#: by cycle detection within one wait slice; the timeout only catches
#: waits the graph cannot explain.
DEFAULT_LOCK_TIMEOUT = 5.0

#: How long one condition-wait slice lasts: bounds how quickly a marked
#: victim notices and how often waiters re-run cycle detection.
_WAIT_SLICE = 0.05


class LockManager:
    """Table-granular S/X locks with upgrade, deadlock detection and
    timeout.

    Owners are opaque integer ids allocated monotonically by the
    database (transaction ids and ephemeral autocommit owners share one
    counter, so "younger" is a total order).  The manager never blocks
    while holding its own mutex for long: waits happen on ``_cond`` in
    bounded slices.
    """

    def __init__(self, *, timeout: float = DEFAULT_LOCK_TIMEOUT) -> None:
        self.timeout = float(timeout)
        self._cond = threading.Condition()
        #: table -> {owner id -> "S" | "X"}
        self._holders: dict[str, dict[int, str]] = {}
        #: owner id -> (table, wanted mode) for parked waiters
        self._waiting: dict[int, tuple[str, str]] = {}
        #: owners chosen as deadlock victims, with the abort reason;
        #: the owner raises DeadlockError from its pending acquire
        self._victims: dict[int, str] = {}
        self.deadlocks_detected = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # acquire / release
    # ------------------------------------------------------------------

    def acquire(self, owner: int, table: str, mode: str) -> None:
        """Grant ``owner`` an S or X lock on ``table``, blocking until
        compatible.  Re-acquiring a held mode is a no-op; S→X upgrades
        in place once ``owner`` is the sole holder.  Raises
        :class:`DeadlockError` if ``owner`` is chosen as a deadlock
        victim or the wait exceeds :attr:`timeout`."""
        deadline: float | None = None
        with self._cond:
            while True:
                self._raise_if_victim(owner)
                held = self._holders.get(table, {})
                mine = held.get(owner)
                if mine == LOCK_EXCLUSIVE or (
                    mode == LOCK_SHARED and mine is not None
                ):
                    self._waiting.pop(owner, None)
                    return
                if not self._blockers(table, mode, owner):
                    self._holders.setdefault(table, {})[owner] = mode
                    self._waiting.pop(owner, None)
                    return
                if deadline is None:
                    deadline = time.monotonic() + self.timeout
                self._waiting[owner] = (table, mode)
                cycle = self._cycle_through(owner)
                if cycle:
                    self.deadlocks_detected += 1
                    victim = max(cycle)
                    reason = (
                        f"deadlock on table {table!r}: transactions "
                        f"{sorted(cycle)} wait on each other; aborting the "
                        f"youngest ({victim})"
                    )
                    if victim == owner:
                        self._waiting.pop(owner, None)
                        raise DeadlockError(reason)
                    self._victims[victim] = reason
                    self._cond.notify_all()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._waiting.pop(owner, None)
                    self.timeouts += 1
                    raise DeadlockError(
                        f"lock wait timeout ({self.timeout:.1f}s) for "
                        f"{mode} on table {table!r} (owner {owner}); "
                        "the transaction may be rolled back and retried"
                    )
                self._cond.wait(min(remaining, _WAIT_SLICE))

    def release_all(self, owner: int) -> None:
        """Drop every lock (and any pending wait / victim mark) held by
        ``owner`` and wake waiters.  Idempotent."""
        with self._cond:
            for table in [
                name for name, held in self._holders.items() if owner in held
            ]:
                held = self._holders[table]
                del held[owner]
                if not held:
                    del self._holders[table]
            self._waiting.pop(owner, None)
            self._victims.pop(owner, None)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # wait-for graph
    # ------------------------------------------------------------------

    def _blockers(self, table: str, mode: str, owner: int) -> tuple[int, ...]:
        """Owners (other than ``owner``) whose held lock is incompatible
        with ``owner`` taking ``mode`` on ``table``."""
        held = self._holders.get(table)
        if not held:
            return ()
        if mode == LOCK_SHARED:
            return tuple(
                other
                for other, held_mode in held.items()
                if other != owner and held_mode == LOCK_EXCLUSIVE
            )
        return tuple(other for other in held if other != owner)

    def _raise_if_victim(self, owner: int) -> None:
        reason = self._victims.pop(owner, None)
        if reason is not None:
            self._waiting.pop(owner, None)
            raise DeadlockError(reason)

    def _cycle_through(self, owner: int) -> tuple[int, ...]:
        """Owners forming a wait-for cycle through ``owner`` (empty if
        none).  Edges run waiter → blockers; only parked waiters have
        outgoing edges, so every cycle member is abortable in place."""
        edges = {
            waiter: self._blockers(table, mode, waiter)
            for waiter, (table, mode) in self._waiting.items()
        }
        forward: set[int] = set()
        stack = [owner]
        while stack:
            for nxt in edges.get(stack.pop(), ()):
                if nxt not in forward:
                    forward.add(nxt)
                    stack.append(nxt)
        if owner not in forward:
            return ()
        reverse: dict[int, set[int]] = {}
        for source, targets in edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(source)
        backward: set[int] = set()
        stack = [owner]
        while stack:
            for prev in reverse.get(stack.pop(), ()):
                if prev not in backward:
                    backward.add(prev)
                    stack.append(prev)
        return tuple((forward & backward) | {owner})

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def held_by(self, owner: int) -> dict[str, str]:
        """``table -> mode`` snapshot of the locks ``owner`` holds."""
        with self._cond:
            return {
                table: held[owner]
                for table, held in self._holders.items()
                if owner in held
            }

    def lock_count(self) -> int:
        with self._cond:
            return sum(len(held) for held in self._holders.values())

    def assert_quiescent(self) -> None:
        """Raise ``ConstraintError`` unless the lock table is empty —
        every commit/rollback/deadlock-abort path must end in
        ``release_all``, so at quiescence nothing may be held or
        parked (checked by :meth:`Database.verify`)."""
        with self._cond:
            if self._holders or self._waiting:
                raise ConstraintError(
                    "lock manager not quiescent: held="
                    f"{ {t: dict(h) for t, h in self._holders.items()} } "
                    f"waiting={dict(self._waiting)}"
                )

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "tables_locked": len(self._holders),
                "locks_held": sum(len(held) for held in self._holders.values()),
                "waiters": len(self._waiting),
                "deadlocks_detected": self.deadlocks_detected,
                "timeouts": self.timeouts,
                "timeout_seconds": self.timeout,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"LockManager(locks={stats['locks_held']}, "
            f"waiters={stats['waiters']}, "
            f"deadlocks={stats['deadlocks_detected']})"
        )
