"""Two-level (table + row) lock manager with intention locks,
escalation and deadlock handling.

The multi-writer concurrency protocol (strict two-phase locking) over a
**lock hierarchy**: intention locks at table granularity plus S/X locks
at row granularity, so writers touching disjoint rows of the *same*
table no longer serialize:

* A transaction takes an **IS** (intention-shared) table lock plus a
  row **S** lock the first time it point-reads a row, and an **IX**
  (intention-exclusive) table lock plus a row **X** lock the first time
  it writes one.  Whole-table reads (scans, index iteration, ``len``)
  take a table-level **S** lock; index/table DDL and autocommit
  fallbacks take table-level **X**.  Upgrades happen in place along the
  mode lattice (``IS < IX < X``, ``IS < S < X``); the incomparable
  ``IX``+``S`` combination — read a whole table after writing rows of
  it — goes straight to ``X`` (no SIX mode).
* Compatibility is the classic intention matrix::

          IS   IX   S    X
      IS  ok   ok   ok   --
      IX  ok   ok   --   --
      S   ok   --   ok   --
      X   --   --   --   --

  Row locks use plain S/X compatibility, and a table-level S or X also
  *covers* rows: a table-S holder blocks foreign row-X grants and a
  table-X holder blocks all foreign row grants (checked through O(1)
  per-owner row counters, never by walking row entries).
* **Escalation**: once one owner holds more than
  :attr:`escalation_threshold` row locks on a single table (default
  ``DEFAULT_ESCALATION_THRESHOLD``), the manager upgrades it to a full
  table lock (X when any of its row locks are exclusive, else S) and
  drops the row entries — the lock table stays bounded no matter how
  wide a transaction sweeps.  Escalation widens the footprint, so it
  runs through the same blocking acquire as any other request and
  therefore **re-runs deadlock detection**: two escalating writers on
  one table form a cycle and the youngest aborts.
* Locks are held until the transaction ends; the commit path releases
  them only **after** the commit record is durable per the WAL's fsync
  policy (2PL held through the log write), so conflicting transactions
  serialize in WAL order while row-disjoint transactions commit in
  parallel and share one group fsync.
* Autocommit mutations take an ephemeral IX + row X (or a plain table
  X for DDL) for the duration of the mutation envelope.
* Snapshot-view readers take no lock-manager locks at all — they read
  copy-on-write snapshots (MVCC readers).

Deadlock handling is wait-for-graph cycle detection with a configurable
timeout fallback, generalized over both lock levels: a parked waiter is
keyed ``(table, pk-or-None, mode)`` and its blockers are computed from
table holders, row holders and covering locks alike, so cycles through
any mix of row and table waits are found the moment the last edge
appears.  The victim is the **youngest** transaction on the cycle
(highest owner id — owner ids are allocated monotonically), which is
marked and woken; it raises :class:`DeadlockError` from its pending
acquisition, rolls back cleanly through its undo log (rollback only
touches rows the victim already holds X locks on, so it can never
block), and may retry.  A waiter that exhausts ``timeout`` seconds
without a grant raises :class:`DeadlockError` as well — the fallback
for anything the graph cannot see.

Quiescence auditing is O(1): the manager maintains ``_table_lock_count``
and ``_row_lock_count`` alongside the holder maps, so
:meth:`assert_quiescent` (called by ``Database.verify``) checks two
counters and three dict-emptiness flags instead of walking row entries.

The two-level lock state (``_holders``, ``_row_holders``,
``_owner_row_pks``, ``_row_owner_counts``, ``_row_x_counts``,
``_waiting``, ``_victims``) is owned by this module alone and mutated
only under ``_cond`` — the invariant linter's ``lock-discipline`` rule
enforces the module boundary the same way it guards ``Table._rows``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from .errors import ConstraintError, DeadlockError

__all__ = [
    "LockManager",
    "LOCK_INTENT_SHARED",
    "LOCK_INTENT_EXCLUSIVE",
    "LOCK_SHARED",
    "LOCK_EXCLUSIVE",
    "DEFAULT_LOCK_TIMEOUT",
    "DEFAULT_ESCALATION_THRESHOLD",
]

LOCK_INTENT_SHARED = "IS"
LOCK_INTENT_EXCLUSIVE = "IX"
LOCK_SHARED = "S"
LOCK_EXCLUSIVE = "X"

#: Fallback lock-wait timeout (seconds).  Genuine deadlocks are broken
#: by cycle detection within one wait slice; the timeout only catches
#: waits the graph cannot explain.
DEFAULT_LOCK_TIMEOUT = 5.0

#: Row locks one owner may hold on a single table before the manager
#: escalates it to a full table lock.
DEFAULT_ESCALATION_THRESHOLD = 256

#: How long one condition-wait slice lasts: bounds how quickly a marked
#: victim notices and how often waiters re-run cycle detection.
_WAIT_SLICE = 0.05

#: mode -> the set of modes another owner may hold concurrently
_COMPATIBLE = {
    LOCK_INTENT_SHARED: frozenset(
        {LOCK_INTENT_SHARED, LOCK_INTENT_EXCLUSIVE, LOCK_SHARED}
    ),
    LOCK_INTENT_EXCLUSIVE: frozenset(
        {LOCK_INTENT_SHARED, LOCK_INTENT_EXCLUSIVE}
    ),
    LOCK_SHARED: frozenset({LOCK_INTENT_SHARED, LOCK_SHARED}),
    LOCK_EXCLUSIVE: frozenset(),
}

#: mode -> the modes it subsumes (re-acquiring a covered mode is a no-op)
_COVERS = {
    LOCK_INTENT_SHARED: frozenset({LOCK_INTENT_SHARED}),
    LOCK_INTENT_EXCLUSIVE: frozenset(
        {LOCK_INTENT_SHARED, LOCK_INTENT_EXCLUSIVE}
    ),
    LOCK_SHARED: frozenset({LOCK_INTENT_SHARED, LOCK_SHARED}),
    LOCK_EXCLUSIVE: frozenset(
        {LOCK_INTENT_SHARED, LOCK_INTENT_EXCLUSIVE, LOCK_SHARED, LOCK_EXCLUSIVE}
    ),
}


def _combine(held: str, wanted: str) -> str:
    """The weakest table mode covering both ``held`` and ``wanted``.

    The lattice has no SIX mode, so the one incomparable pair
    (``IX`` + ``S``) joins at ``X``.
    """
    if wanted in _COVERS[held]:
        return held
    if held in _COVERS[wanted]:
        return wanted
    return LOCK_EXCLUSIVE


class LockManager:
    """Hierarchical IS/IX/S/X locks with upgrade, escalation, deadlock
    detection and timeout.

    Owners are opaque integer ids allocated monotonically by the
    database (transaction ids and ephemeral autocommit owners share one
    counter, so "younger" is a total order).  The manager never blocks
    while holding its own mutex for long: waits happen on ``_cond`` in
    bounded slices.
    """

    def __init__(
        self,
        *,
        timeout: float = DEFAULT_LOCK_TIMEOUT,
        escalation_threshold: int = DEFAULT_ESCALATION_THRESHOLD,
    ) -> None:
        self.timeout = float(timeout)
        self.escalation_threshold = int(escalation_threshold)
        self._cond = threading.Condition()
        #: table -> {owner id -> "IS" | "IX" | "S" | "X"}
        self._holders: dict[str, dict[int, str]] = {}
        #: table -> {pk -> {owner id -> "S" | "X"}}
        self._row_holders: dict[str, dict[Any, dict[int, str]]] = {}
        #: owner id -> {table -> set of row-locked pks} (release/escalate
        #: walk only the owner's own entries)
        self._owner_row_pks: dict[int, dict[str, set[Any]]] = {}
        #: table -> {owner id -> row locks held} — O(1) "who holds rows
        #: here" for table-X admission and the escalation trigger
        self._row_owner_counts: dict[str, dict[int, int]] = {}
        #: table -> {owner id -> exclusive row locks held} — O(1)
        #: table-S admission (S is compatible with foreign row S)
        self._row_x_counts: dict[str, dict[int, int]] = {}
        #: owner id -> (table, pk-or-None, wanted mode) for parked
        #: waiters; pk None means a table-level request
        self._waiting: dict[int, tuple[str, Any, str]] = {}
        #: owners chosen as deadlock victims, with the abort reason;
        #: the owner raises DeadlockError from its pending acquire
        self._victims: dict[int, str] = {}
        #: O(1) quiescence counters (mirror the maps above)
        self._table_lock_count = 0
        self._row_lock_count = 0
        self.deadlocks_detected = 0
        self.victims_aborted = 0
        self.timeouts = 0
        self.escalations = 0

    # ------------------------------------------------------------------
    # acquire / release
    # ------------------------------------------------------------------

    def acquire(self, owner: int, table: str, mode: str) -> str:
        """Grant ``owner`` a table-level lock on ``table``, blocking
        until compatible, and return the resulting held mode.
        Re-acquiring a covered mode is a no-op; upgrades (IS→IX, S→X,
        IX+S→X, …) happen in place once every incompatible holder is
        gone.  Raises :class:`DeadlockError` if ``owner`` is chosen as
        a deadlock victim or the wait exceeds :attr:`timeout`."""
        if mode not in _COMPATIBLE:
            raise ConstraintError(f"unknown lock mode {mode!r}")
        return self._acquire(owner, table, None, mode)

    def acquire_row(
        self, owner: int, table: str, pk: Any, mode: str
    ) -> str | None:
        """Grant ``owner`` an S or X lock on row ``(table, pk)``.

        Returns the table-level mode the grant **escalated** to (``S``
        or ``X``) once ``owner`` crosses :attr:`escalation_threshold`
        row locks on ``table``, or None when the plain row lock was
        granted.  Escalation re-enters the blocking acquire path, so it
        re-runs deadlock detection over the widened footprint; the
        escalated owner's row entries on the table are folded into the
        table lock and dropped."""
        if mode not in (LOCK_SHARED, LOCK_EXCLUSIVE):
            raise ConstraintError(f"unknown row lock mode {mode!r}")
        self._acquire(owner, table, pk, mode)
        with self._cond:
            count = self._row_owner_counts.get(table, {}).get(owner, 0)
            table_mode = self._holders.get(table, {}).get(owner)
            if count <= self.escalation_threshold or table_mode == LOCK_EXCLUSIVE:
                return None
        return self._escalate(owner, table)

    def _escalate(self, owner: int, table: str) -> str:
        """Upgrade ``owner`` to a full table lock on ``table`` and fold
        its row locks into it.  Blocks (and may abort as a deadlock
        victim) like any acquire — the widened footprint re-runs cycle
        detection."""
        with self._cond:
            exclusive = self._row_x_counts.get(table, {}).get(owner, 0) > 0
            table_mode = self._holders.get(table, {}).get(owner)
        target = (
            LOCK_EXCLUSIVE
            if exclusive or table_mode == LOCK_INTENT_EXCLUSIVE
            else LOCK_SHARED
        )
        granted = self._acquire(owner, table, None, target)
        with self._cond:
            self._drop_rows_locked(owner, table)
            self.escalations += 1
            self._cond.notify_all()
        return granted

    def release_all(self, owner: int) -> None:
        """Drop every table and row lock (and any pending wait / victim
        mark) held by ``owner`` and wake waiters.  Idempotent."""
        with self._cond:
            for table in list(self._owner_row_pks.get(owner, ())):
                self._drop_rows_locked(owner, table)
            self._owner_row_pks.pop(owner, None)
            for table in [
                name for name, held in self._holders.items() if owner in held
            ]:
                held = self._holders[table]
                del held[owner]
                self._table_lock_count -= 1
                if not held:
                    del self._holders[table]
            self._waiting.pop(owner, None)
            self._victims.pop(owner, None)
            self._cond.notify_all()

    def _drop_rows_locked(self, owner: int, table: str) -> None:
        """Remove every row lock ``owner`` holds on ``table`` (called
        under ``_cond`` by release and escalation)."""
        owned = self._owner_row_pks.get(owner)
        pks = owned.pop(table, None) if owned else None
        if owned is not None and not owned:
            self._owner_row_pks.pop(owner, None)
        if not pks:
            return
        rows = self._row_holders.get(table)
        if rows is not None:
            for pk in pks:
                entry = rows.get(pk)
                if entry is not None and entry.pop(owner, None) is not None:
                    self._row_lock_count -= 1
                    if not entry:
                        del rows[pk]
            if not rows:
                del self._row_holders[table]
        for counts_by_table in (self._row_owner_counts, self._row_x_counts):
            counts = counts_by_table.get(table)
            if counts is not None:
                counts.pop(owner, None)
                if not counts:
                    del counts_by_table[table]

    # ------------------------------------------------------------------
    # the blocking acquire loop (both levels)
    # ------------------------------------------------------------------

    def _acquire(self, owner: int, table: str, pk: Any, mode: str) -> str:
        deadline: float | None = None
        with self._cond:
            while True:
                self._raise_if_victim(owner)
                if pk is None:
                    granted = self._try_table(owner, table, mode)
                else:
                    granted = self._try_row(owner, table, pk, mode)
                if granted is not None:
                    self._waiting.pop(owner, None)
                    return granted
                if deadline is None:
                    deadline = time.monotonic() + self.timeout
                self._waiting[owner] = (table, pk, mode)
                cycle = self._cycle_through(owner)
                if cycle:
                    self.deadlocks_detected += 1
                    victim = max(cycle)
                    what = (
                        f"table {table!r}"
                        if pk is None
                        else f"row ({table!r}, {pk!r})"
                    )
                    reason = (
                        f"deadlock on {what}: transactions "
                        f"{sorted(cycle)} wait on each other; aborting the "
                        f"youngest ({victim})"
                    )
                    if victim == owner:
                        self._waiting.pop(owner, None)
                        self.victims_aborted += 1
                        raise DeadlockError(reason)
                    if victim not in self._victims:
                        self._victims[victim] = reason
                        self.victims_aborted += 1
                    self._cond.notify_all()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._waiting.pop(owner, None)
                    self.timeouts += 1
                    what = (
                        f"table {table!r}"
                        if pk is None
                        else f"row ({table!r}, {pk!r})"
                    )
                    raise DeadlockError(
                        f"lock wait timeout ({self.timeout:.1f}s) for "
                        f"{mode} on {what} (owner {owner}); "
                        "the transaction may be rolled back and retried"
                    )
                self._cond.wait(min(remaining, _WAIT_SLICE))

    def _try_table(self, owner: int, table: str, mode: str) -> str | None:
        """Grant (or upgrade to) a table-level lock if admissible;
        returns the resulting mode or None when blocked."""
        held = self._holders.get(table, {})
        mine = held.get(owner)
        needed = mode if mine is None else _combine(mine, mode)
        if mine is not None and needed == mine:
            return mine
        if self._table_blockers(table, needed, owner):
            return None
        if mine is None:
            self._holders.setdefault(table, {})[owner] = needed
            self._table_lock_count += 1
        else:
            self._holders[table][owner] = needed
        return needed

    def _try_row(self, owner: int, table: str, pk: Any, mode: str) -> str | None:
        """Grant (or upgrade to) a row lock if admissible; returns the
        resulting mode or None when blocked.  A covering table lock
        held by ``owner`` satisfies the request without creating a row
        entry."""
        table_mode = self._holders.get(table, {}).get(owner)
        if table_mode == LOCK_EXCLUSIVE or (
            table_mode == LOCK_SHARED and mode == LOCK_SHARED
        ):
            return table_mode
        entry = self._row_holders.get(table, {}).get(pk, {})
        mine = entry.get(owner)
        needed = (
            mode
            if mine is None
            else (
                LOCK_EXCLUSIVE
                if LOCK_EXCLUSIVE in (mine, mode)
                else LOCK_SHARED
            )
        )
        if mine is not None and needed == mine:
            return mine
        if self._row_blockers(table, pk, needed, owner):
            return None
        bucket = self._row_holders.setdefault(table, {}).setdefault(pk, {})
        bucket[owner] = needed
        if mine is None:
            self._owner_row_pks.setdefault(owner, {}).setdefault(
                table, set()
            ).add(pk)
            counts = self._row_owner_counts.setdefault(table, {})
            counts[owner] = counts.get(owner, 0) + 1
            self._row_lock_count += 1
        if needed == LOCK_EXCLUSIVE and mine != LOCK_EXCLUSIVE:
            xcounts = self._row_x_counts.setdefault(table, {})
            xcounts[owner] = xcounts.get(owner, 0) + 1
        return needed

    # ------------------------------------------------------------------
    # wait-for graph
    # ------------------------------------------------------------------

    def _table_blockers(
        self, table: str, mode: str, owner: int
    ) -> tuple[int, ...]:
        """Owners (other than ``owner``) blocking a table-level ``mode``
        grant: incompatible table-level holders, plus — for the
        row-covering S and X modes — owners holding conflicting row
        locks, found through the O(1) per-owner counters."""
        blockers = []
        held = self._holders.get(table)
        if held:
            compatible = _COMPATIBLE[mode]
            for other, other_mode in held.items():
                if other != owner and other_mode not in compatible:
                    blockers.append(other)
        if mode == LOCK_EXCLUSIVE:
            row_counts: dict[int, int] | None = self._row_owner_counts.get(table)
        elif mode == LOCK_SHARED:
            row_counts = self._row_x_counts.get(table)
        else:
            row_counts = None
        if row_counts:
            for other, count in row_counts.items():
                if other != owner and count > 0:
                    blockers.append(other)
        return tuple(blockers)

    def _row_blockers(
        self, table: str, pk: Any, mode: str, owner: int
    ) -> tuple[int, ...]:
        """Owners (other than ``owner``) blocking a row ``mode`` grant
        on ``(table, pk)``: conflicting holders of the same row, plus
        holders of a covering table-level lock (table X blocks every
        foreign row grant; table S blocks foreign row X)."""
        blockers = []
        entry = self._row_holders.get(table, {}).get(pk)
        if entry:
            for other, other_mode in entry.items():
                if other != owner and (
                    mode == LOCK_EXCLUSIVE or other_mode == LOCK_EXCLUSIVE
                ):
                    blockers.append(other)
        held = self._holders.get(table)
        if held:
            for other, other_mode in held.items():
                if other == owner:
                    continue
                if other_mode == LOCK_EXCLUSIVE or (
                    other_mode == LOCK_SHARED and mode == LOCK_EXCLUSIVE
                ):
                    blockers.append(other)
        return tuple(blockers)

    def _blockers_of(self, waiter: int, want: tuple[str, Any, str]) -> tuple[int, ...]:
        table, pk, mode = want
        if pk is None:
            held = self._holders.get(table, {})
            mine = held.get(waiter)
            needed = mode if mine is None else _combine(mine, mode)
            return self._table_blockers(table, needed, waiter)
        return self._row_blockers(table, pk, mode, waiter)

    def _raise_if_victim(self, owner: int) -> None:
        reason = self._victims.pop(owner, None)
        if reason is not None:
            self._waiting.pop(owner, None)
            raise DeadlockError(reason)

    def _cycle_through(self, owner: int) -> tuple[int, ...]:
        """Owners forming a wait-for cycle through ``owner`` (empty if
        none).  Edges run waiter → blockers over both lock levels; only
        parked waiters have outgoing edges, so every cycle member is
        abortable in place."""
        edges = {
            waiter: self._blockers_of(waiter, want)
            for waiter, want in self._waiting.items()
        }
        forward: set[int] = set()
        stack = [owner]
        while stack:
            for nxt in edges.get(stack.pop(), ()):
                if nxt not in forward:
                    forward.add(nxt)
                    stack.append(nxt)
        if owner not in forward:
            return ()
        reverse: dict[int, set[int]] = {}
        for source, targets in edges.items():
            for target in targets:
                reverse.setdefault(target, set()).add(source)
        backward: set[int] = set()
        stack = [owner]
        while stack:
            for prev in reverse.get(stack.pop(), ()):
                if prev not in backward:
                    backward.add(prev)
                    stack.append(prev)
        return tuple((forward & backward) | {owner})

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def held_by(self, owner: int) -> dict[str, str]:
        """``table -> mode`` snapshot of the table-level locks ``owner``
        holds."""
        with self._cond:
            return {
                table: held[owner]
                for table, held in self._holders.items()
                if owner in held
            }

    def row_locks_held_by(self, owner: int) -> dict[str, int]:
        """``table -> row lock count`` snapshot for ``owner``."""
        with self._cond:
            return {
                table: len(pks)
                for table, pks in self._owner_row_pks.get(owner, {}).items()
            }

    def lock_count(self) -> int:
        """Total grants held across both levels (O(1) counters)."""
        with self._cond:
            return self._table_lock_count + self._row_lock_count

    def assert_quiescent(self) -> None:
        """Raise ``ConstraintError`` unless the whole two-level lock
        table has drained — every commit/rollback/deadlock-abort path
        must end in ``release_all``, so at quiescence nothing may be
        held or parked (checked by :meth:`Database.verify`).  O(1):
        compares the maintained counters and dict-emptiness flags, never
        walking row entries."""
        with self._cond:
            if (
                self._table_lock_count
                or self._row_lock_count
                or self._holders
                or self._row_holders
                or self._waiting
            ):
                raise ConstraintError(
                    "lock manager not quiescent: "
                    f"table_locks={self._table_lock_count} "
                    f"row_locks={self._row_lock_count} "
                    f"held={ {t: dict(h) for t, h in self._holders.items()} } "
                    f"rows={ {t: len(r) for t, r in self._row_holders.items()} } "
                    f"waiting={dict(self._waiting)}"
                )

    def stats(self) -> dict[str, Any]:
        with self._cond:
            return {
                "tables_locked": len(self._holders),
                "locks_held": self._table_lock_count + self._row_lock_count,
                "table_locks_held": self._table_lock_count,
                "row_locks_held": self._row_lock_count,
                "waiters": len(self._waiting),
                "deadlocks_detected": self.deadlocks_detected,
                "victims": self.victims_aborted,
                "timeouts": self.timeouts,
                "escalations": self.escalations,
                "escalation_threshold": self.escalation_threshold,
                "timeout_seconds": self.timeout,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats()
        return (
            f"LockManager(locks={stats['locks_held']}, "
            f"rows={stats['row_locks_held']}, "
            f"waiters={stats['waiters']}, "
            f"deadlocks={stats['deadlocks_detected']}, "
            f"escalations={stats['escalations']})"
        )
