"""Typed configuration objects shared across the library.

Each config is a frozen dataclass with a ``validate()`` method that
raises :class:`repro.errors.ConfigError` naming the offending field.
Construction helpers (``replace``) come from :mod:`dataclasses`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from .errors import ConfigError

__all__ = [
    "DatasetConfig",
    "TaggerConfig",
    "QualityConfig",
    "StrategyConfig",
    "CampaignConfig",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class DatasetConfig:
    """Parameters of the synthetic Delicious-like corpus.

    Attributes mirror the statistics the paper's motivation relies on:
    a heavy-tailed popularity so that "most tags are added to the few
    highly-popular resources, while most of the resources receive few
    tags" (Sec. I).
    """

    n_resources: int = 300
    vocabulary_size: int = 2000
    n_topics: int = 20
    tags_per_resource_min: int = 8
    tags_per_resource_max: int = 40
    zipf_exponent: float = 1.1
    initial_posts_total: int = 3000
    min_initial_posts: int = 0
    topic_concentration: float = 0.3
    within_resource_concentration: float = 0.8

    def validate(self) -> "DatasetConfig":
        _require(self.n_resources >= 1, f"n_resources must be >= 1, got {self.n_resources}")
        _require(
            self.vocabulary_size >= self.tags_per_resource_max,
            "vocabulary_size must be >= tags_per_resource_max "
            f"({self.vocabulary_size} < {self.tags_per_resource_max})",
        )
        _require(self.n_topics >= 1, f"n_topics must be >= 1, got {self.n_topics}")
        _require(self.tags_per_resource_min >= 1, "tags_per_resource_min must be >= 1")
        _require(
            self.tags_per_resource_max >= self.tags_per_resource_min,
            "tags_per_resource_max must be >= tags_per_resource_min",
        )
        _require(self.zipf_exponent > 0.0, "zipf_exponent must be positive")
        _require(self.initial_posts_total >= 0, "initial_posts_total must be >= 0")
        _require(self.min_initial_posts >= 0, "min_initial_posts must be >= 0")
        _require(self.topic_concentration > 0.0, "topic_concentration must be positive")
        _require(
            self.within_resource_concentration > 0.0,
            "within_resource_concentration must be positive",
        )
        return self


@dataclass(frozen=True)
class TaggerConfig:
    """Parameters of simulated tagger behaviour (Sec. I: noisy, incomplete)."""

    noise_rate: float = 0.10
    mean_tags_per_post: float = 3.0
    max_tags_per_post: int = 10
    typo_rate: float = 0.25
    vocabulary_breadth: float = 1.0

    def validate(self) -> "TaggerConfig":
        _require(0.0 <= self.noise_rate <= 1.0, f"noise_rate must be in [0,1], got {self.noise_rate}")
        _require(self.mean_tags_per_post >= 1.0, "mean_tags_per_post must be >= 1")
        _require(self.max_tags_per_post >= 1, "max_tags_per_post must be >= 1")
        _require(
            self.max_tags_per_post >= self.mean_tags_per_post / 2,
            "max_tags_per_post is too small relative to mean_tags_per_post",
        )
        _require(0.0 <= self.typo_rate <= 1.0, "typo_rate must be in [0,1]")
        _require(0.0 < self.vocabulary_breadth <= 1.0, "vocabulary_breadth must be in (0,1]")
        return self


@dataclass(frozen=True)
class QualityConfig:
    """Parameters of the stability-based quality estimator (Sec. II)."""

    estimator: str = "ewma"
    ewma_alpha: float = 0.25
    window: int = 10
    min_posts_for_estimate: int = 2
    distance: str = "tv"

    _ESTIMATORS = ("ewma", "window", "split_half")
    _DISTANCES = ("tv", "l2", "js", "hellinger", "cosine")

    def validate(self) -> "QualityConfig":
        _require(
            self.estimator in self._ESTIMATORS,
            f"estimator must be one of {self._ESTIMATORS}, got {self.estimator!r}",
        )
        _require(0.0 < self.ewma_alpha <= 1.0, "ewma_alpha must be in (0,1]")
        _require(self.window >= 2, "window must be >= 2")
        _require(self.min_posts_for_estimate >= 2, "min_posts_for_estimate must be >= 2")
        _require(
            self.distance in self._DISTANCES,
            f"distance must be one of {self._DISTANCES}, got {self.distance!r}",
        )
        return self


@dataclass(frozen=True)
class StrategyConfig:
    """Strategy-specific knobs (Table I)."""

    name: str = "fp-mu"
    batch_size: int = 1
    hybrid_min_posts: int = 5
    hybrid_budget_fraction: float = 0.5
    free_choice_popularity_exponent: float = 1.0
    recompute_every: int = 1

    _NAMES = (
        "fc", "fp", "mu", "fp-mu", "random", "round-robin", "optimal", "adaptive"
    )

    def validate(self) -> "StrategyConfig":
        _require(
            self.name in self._NAMES,
            f"strategy name must be one of {self._NAMES}, got {self.name!r}",
        )
        _require(self.batch_size >= 1, "batch_size must be >= 1")
        _require(self.hybrid_min_posts >= 0, "hybrid_min_posts must be >= 0")
        _require(
            0.0 <= self.hybrid_budget_fraction <= 1.0,
            "hybrid_budget_fraction must be in [0,1]",
        )
        _require(
            self.free_choice_popularity_exponent >= 0.0,
            "free_choice_popularity_exponent must be >= 0",
        )
        _require(self.recompute_every >= 1, "recompute_every must be >= 1")
        return self


@dataclass(frozen=True)
class CampaignConfig:
    """Top-level configuration of one allocation campaign (Algorithm 1 run)."""

    budget: int = 1000
    pay_per_task: float = 0.05
    master_seed: int = 0
    dataset: DatasetConfig = field(default_factory=DatasetConfig)
    tagger: TaggerConfig = field(default_factory=TaggerConfig)
    quality: QualityConfig = field(default_factory=QualityConfig)
    strategy: StrategyConfig = field(default_factory=StrategyConfig)

    def validate(self) -> "CampaignConfig":
        _require(self.budget >= 0, f"budget must be >= 0, got {self.budget}")
        _require(self.pay_per_task >= 0.0, "pay_per_task must be >= 0")
        for sub in (self.dataset, self.tagger, self.quality, self.strategy):
            sub.validate()
        return self

    def describe(self) -> str:
        """One-line human-readable summary, used by monitors and the CLI."""
        return (
            f"budget={self.budget} pay/task={self.pay_per_task:.3f} "
            f"strategy={self.strategy.name} n={self.dataset.n_resources} "
            f"seed={self.master_seed}"
        )


def config_fields(config: object) -> dict[str, object]:
    """Return a plain dict of a config dataclass (for JSON round-trips)."""
    return {f.name: getattr(config, f.name) for f in fields(config)}
