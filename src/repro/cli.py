"""Command-line interface: ``itag`` (or ``python -m repro``).

Subcommands::

    itag list-experiments
    itag run-experiment EXP-T1 [--fast] [--save out.json]
    itag generate-dataset --resources 300 --posts 3000 --seed 7 \\
        [--out corpus.json.gz] [--report]
    itag demo [--seed 11]
    itag store explain TABLE [--where "quality>=0.5" ...] \\
        [--order-by COL] [--descending] [--limit N] \\
        [--join TABLE --on LEFT=RIGHT [--how inner|left]]... [--rows N]
    itag store recover --dir STATE_DIR [--fsync POLICY]
    itag store checkpoint --dir STATE_DIR [--fsync POLICY] [--full] [--stats]
    itag store smoke [--readers N] [--writers N] [--tasks N] [--seed N] \\
        [--same-table]
    itag lint [PATH ...] [--rule ID]... [--baseline check|update|ignore] \\
        [--baseline-file PATH] [--format text|json] [--list-rules]
    itag version

``store explain`` prints the physical plan the cost-based planner picks
for a query over the system schema (populated with ``--rows`` synthetic
rows per table so index statistics are meaningful).  ``--join``/``--on``
repeat: each pair chains another relation onto the join graph, and the
printed tree shows the *planner-chosen* join order — the
``[join-order: ...]`` line names the order and search algorithm, and
``[plan-cache: ...]`` reports compiled-plan reuse.

``store recover`` opens a managed durability directory, reports what
crash recovery did (checkpoint loaded, committed records replayed, torn
tail discarded/repaired), and exits 0 when the recovered state passes
the store's consistency checks.  ``store checkpoint`` writes one
checkpoint generation — incremental by default (manifest + per-table
files, clean tables reused), legacy full snapshot with ``--full`` —
then prunes covered WAL segments; ``--stats`` prints the
rewritten/reused split, bytes, segment counts and timing.  ``store
smoke``
runs the concurrent-session driver (N writers vs N snapshot readers)
on a small synthetic campaign, reporting per-writer commit/abort/
deadlock-retry counters plus the lock manager's deadlock/victim/
timeout/escalation totals, and fails on any torn read.  With
``--same-table`` the writers instead increment disjoint rows of one
shared counter table — the per-row-locking hot path — and the run
additionally fails on any lost update.

``itag lint`` runs the engine invariant linter
(:mod:`repro.analysis.lint`) over the package source (or the given
paths) and exits 1 on any finding not covered by the committed baseline
— the same contract as ``scripts/lint_gate.py``, which CI runs before
the test suite.  ``--baseline update`` rewrites the baseline file to
accept the current findings; ``--format json`` emits the CI artifact.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="itag",
        description="Reproduction of 'iTag: Incentive-Based Tagging' (ICDE 2014)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("version", help="print the package version")

    subparsers.add_parser(
        "list-experiments", help="list reproducible tables/figures"
    )

    run_parser = subparsers.add_parser(
        "run-experiment", help="run one experiment and print its report"
    )
    run_parser.add_argument("experiment_id", help="e.g. EXP-T1 (see list-experiments)")
    run_parser.add_argument(
        "--fast", action="store_true", help="CI-sized variant (seconds, looser stats)"
    )
    run_parser.add_argument("--save", metavar="PATH", help="save the result as JSON")

    run_all_parser = subparsers.add_parser(
        "run-all", help="run every experiment, write reports + SUMMARY.md"
    )
    run_all_parser.add_argument("--fast", action="store_true")
    run_all_parser.add_argument("--out", metavar="DIR", help="report directory")
    run_all_parser.add_argument(
        "--only", nargs="+", metavar="EXP", help="subset of experiment ids"
    )

    dataset_parser = subparsers.add_parser(
        "generate-dataset", help="generate a Delicious-like corpus"
    )
    dataset_parser.add_argument("--resources", type=int, default=300)
    dataset_parser.add_argument("--posts", type=int, default=3000)
    dataset_parser.add_argument("--seed", type=int, default=0)
    dataset_parser.add_argument("--out", metavar="PATH", help="write corpus JSON(.gz)")
    dataset_parser.add_argument(
        "--report", action="store_true", help="print skew statistics"
    )

    demo_parser = subparsers.add_parser(
        "demo", help="run the scripted provider/tagger demo (Figs. 3-8)"
    )
    demo_parser.add_argument("--seed", type=int, default=11)

    store_parser = subparsers.add_parser(
        "store", help="embedded-store debugging tools"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)
    explain_parser = store_sub.add_parser(
        "explain", help="print the physical plan for a query over the system schema"
    )
    explain_parser.add_argument("table", help="system table (e.g. resources, posts)")
    explain_parser.add_argument(
        "--where", action="append", default=[], metavar="EXPR",
        help="predicate like 'kind=url', 'quality>=0.5', 'name~needle' "
        "(repeatable; combined with AND)",
    )
    explain_parser.add_argument("--order-by", metavar="COL")
    explain_parser.add_argument("--descending", action="store_true")
    explain_parser.add_argument("--limit", type=int)
    explain_parser.add_argument("--offset", type=int, default=0)
    explain_parser.add_argument(
        "--join", action="append", default=[], metavar="TABLE",
        help="join with another system table (repeatable: each --join "
        "TABLE pairs with the --on at the same position and chains "
        "onto the join graph)",
    )
    explain_parser.add_argument(
        "--on", action="append", default=[], metavar="LEFT=RIGHT",
        help="join keys for the matching --join; LEFT is an output "
        "column (prefixed for chained joins), e.g. id=resource_id "
        "then posts_tagger_id=id",
    )
    explain_parser.add_argument(
        "--how", action="append", default=[], choices=("inner", "left"),
        help="join kind for the matching --join (default inner)",
    )
    explain_parser.add_argument(
        "--rows", type=int, default=500,
        help="synthetic rows per table backing the index statistics (default 500)",
    )

    def add_durability_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dir", required=True, metavar="STATE_DIR",
            help="managed durability directory (checkpoints + wal.log)",
        )
        sub.add_argument(
            "--fsync", choices=("always", "interval", "never"), default="interval",
            help="group-commit fsync policy (default interval)",
        )

    recover_parser = store_sub.add_parser(
        "recover",
        help="crash-recover a durability directory and report what happened",
    )
    add_durability_flags(recover_parser)

    checkpoint_parser = store_sub.add_parser(
        "checkpoint",
        help="write a checkpoint generation and prune covered WAL segments",
    )
    add_durability_flags(checkpoint_parser)
    checkpoint_parser.add_argument(
        "--full", action="store_true",
        help="write a legacy full snapshot (checkpoint-NNNNNN.json) "
        "instead of an incremental manifest generation",
    )
    checkpoint_parser.add_argument(
        "--stats", action="store_true",
        help="print per-checkpoint stats (tables rewritten vs reused, "
        "bytes, wal segments dropped/live, timing)",
    )

    smoke_parser = store_sub.add_parser(
        "smoke",
        help="concurrent-session smoke: N writers vs N snapshot readers",
    )
    smoke_parser.add_argument("--readers", type=int, default=3)
    smoke_parser.add_argument("--writers", type=int, default=1)
    smoke_parser.add_argument("--tasks", type=int, default=40)
    smoke_parser.add_argument("--seed", type=int, default=7)
    smoke_parser.add_argument(
        "--same-table",
        action="store_true",
        help="writers increment disjoint rows of ONE shared table "
        "(per-row locking hot path) instead of running tagging tasks",
    )
    smoke_parser.add_argument(
        "--durable",
        action="store_true",
        help="journal the run to a temporary durability directory and "
        "report checkpoint timing plus WAL segment counts",
    )

    lint_parser = subparsers.add_parser(
        "lint",
        help="engine invariant linter (concurrency/copy/durability rules)",
    )
    lint_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    lint_parser.add_argument(
        "--rule", action="append", default=[], metavar="ID", dest="rules",
        help="run only this rule (repeatable; see --list-rules)",
    )
    lint_parser.add_argument(
        "--baseline", choices=("check", "update", "ignore"), default="check",
        help="check against the committed baseline (default), rewrite it "
        "to accept current findings, or ignore it",
    )
    lint_parser.add_argument(
        "--baseline-file", metavar="PATH",
        help="baseline location (default: lint_baseline.json at the repo root)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt",
        help="report format (json is the CI artifact)",
    )
    lint_parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule pack (id, invariant, scope) and exit",
    )
    return parser


def _cmd_version() -> int:
    print(f"repro {__version__}")
    return 0


def _cmd_list_experiments() -> int:
    from .experiments import list_experiments

    rows = list_experiments()
    width = max(len(row[0]) for row in rows)
    for experiment_id, title, artifact in rows:
        print(f"{experiment_id.ljust(width)}  {title}  [{artifact}]")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_experiment

    result = run_experiment(args.experiment_id, fast=args.fast)
    print(result.to_text())
    if args.save:
        path = result.save(args.save)
        print(f"saved: {path}")
    return 0 if result.all_claims_pass else 1


def _cmd_run_all(args: argparse.Namespace) -> int:
    from .experiments.runner import run_all

    summary = run_all(fast=args.fast, out_dir=args.out, only=args.only)
    passed, total = summary.total_claims()
    for experiment_id in sorted(summary.results):
        result = summary.results[experiment_id]
        ok = sum(1 for claim in result.claims if claim.passed)
        print(
            f"{experiment_id:8s} {ok}/{len(result.claims)} claims  "
            f"({summary.elapsed_seconds[experiment_id]:.1f}s)  {result.title}"
        )
    for experiment_id, message in sorted(summary.errors.items()):
        print(f"{experiment_id:8s} ERROR: {message}")
    print(f"total: {passed}/{total} claims pass")
    if args.out:
        print(f"reports: {args.out}/SUMMARY.md")
    return 0 if summary.all_claims_pass else 1


def _cmd_generate_dataset(args: argparse.Namespace) -> int:
    from .datasets import dataset_report, make_delicious_like, save_corpus

    data = make_delicious_like(
        n_resources=args.resources,
        initial_posts_total=args.posts,
        master_seed=args.seed,
    )
    print(data.describe())
    if args.report:
        print(dataset_report(data.dataset.corpus))
    if args.out:
        path = save_corpus(data.dataset.corpus, args.out)
        print(f"saved: {path}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .experiments.harness import CampaignSpec
    from .experiments.system_screens import run as run_screens

    result = run_screens(
        CampaignSpec(
            n_resources=30,
            initial_posts_total=200,
            population_size=40,
            budget=150,
            seeds=(args.seed,),
        )
    )
    print(result.to_text())
    return 0 if result.all_claims_pass else 1


def _synthetic_value(column, position: int, total: int):
    """A deterministic value for one schema column of one synthetic row."""
    from .store import DataType

    if column.dtype is DataType.INT:
        return position % max(1, total // 10)
    if column.dtype is DataType.FLOAT:
        return (position % 100) / 100.0
    if column.dtype is DataType.BOOL:
        return position % 2 == 0
    if column.dtype is DataType.TIMESTAMP:
        return float(position)
    if column.dtype is DataType.JSON:
        return []
    if column.unique:
        return f"{column.name}-{position}"
    return f"{column.name}-{position % 7}"


def _populate_system_database(rows: int):
    """The system schema filled with ``rows`` synthetic rows per table,
    so ``store explain`` runs against meaningful index statistics."""
    from .system.models import build_system_database

    database = build_system_database("explain")
    for table_name in database.table_names():
        table = database.table(table_name)
        schema = table.schema
        for position in range(rows):
            row = {
                column.name: _synthetic_value(column, position, rows)
                for column in schema.columns
                if column.name != schema.primary_key
            }
            row[schema.primary_key] = position + 1
            table.insert(row)
    return database


_WHERE_OPS = ("<=", ">=", "!=", "~", "=", "<", ">")


def _parse_where(schema, expression: str):
    """One ``--where`` expression compiled to a predicate."""
    from .store import Contains, Eq, Ge, Gt, Le, Lt, Ne, QueryError

    for op in _WHERE_OPS:
        column, separator, raw = expression.partition(op)
        if separator:
            break
    else:
        raise QueryError(
            f"cannot parse --where {expression!r}; expected COL OP VALUE "
            f"with OP in {_WHERE_OPS}"
        )
    column = column.strip()
    if not schema.has_column(column):
        from .store import UnknownColumnError

        raise UnknownColumnError(f"--where references unknown column {column!r}")
    if op == "~":
        return Contains(column, raw.strip())
    value = _coerce_cli_value(schema.column(column), raw.strip())
    by_op = {"=": Eq, "!=": Ne, "<": Lt, "<=": Le, ">": Gt, ">=": Ge}
    return by_op[op](column, value)


def _coerce_cli_value(column, raw: str):
    from .store import DataType

    if raw.lower() in ("null", "none"):
        return None
    if column.dtype is DataType.INT:
        return int(raw)
    if column.dtype in (DataType.FLOAT, DataType.TIMESTAMP):
        return float(raw)
    if column.dtype is DataType.BOOL:
        return raw.lower() in ("1", "true", "yes")
    return raw


def _cmd_store_recover(args: argparse.Namespace) -> int:
    from .store import Database

    database = Database.open(args.dir, fsync=args.fsync)
    try:
        report = database.recovery
        print(report.describe())
        database.verify()
        rows = {
            name: len(database.table(name)) for name in database.table_names()
        }
        print(f"  tables: {rows if rows else 'none'}")
        print("  verify: ok")
    finally:
        database.close()
    return 0


def _cmd_store_checkpoint(args: argparse.Namespace) -> int:
    from .store import Database

    database = Database.open(args.dir, fsync=args.fsync)
    try:
        print(database.recovery.describe())
        wal = database.wal
        records_before = len(wal) if wal is not None else 0
        stats = database.checkpoint(full=args.full)
        records_after = len(wal) if wal is not None else 0
        written = database.last_checkpoint_path
        print(
            f"checkpoint written: {written.name if written else '?'} "
            f"(wal records {records_before} -> {records_after})"
        )
        if args.stats:
            print(
                f"  kind: {stats['kind']} (generation {stats['generation']}, "
                f"wal_lsn {stats['wal_lsn']})"
            )
            print(
                f"  tables: {stats['tables_rewritten']} rewritten, "
                f"{stats['tables_reused']} reused of {stats['tables_total']}"
            )
            print(
                f"  wal: {stats['wal_records_dropped']} records pruned, "
                f"{stats['wal_segments']} segment(s) live"
            )
            print(
                f"  wrote {stats['bytes_written']} bytes "
                f"in {stats['duration_s'] * 1000.0:.1f} ms"
            )
    finally:
        database.close()
    return 0


def _cmd_store_smoke(args: argparse.Namespace) -> int:
    import contextlib
    import tempfile
    from pathlib import Path

    from .datasets import make_delicious_like
    from .system import ITagSystem, SessionDriver

    data = make_delicious_like(
        n_resources=12,
        initial_posts_total=80,
        master_seed=args.seed,
        population_size=20,
    )
    with contextlib.ExitStack() as stack:
        system_args = {}
        if args.durable:
            tmp = stack.enter_context(tempfile.TemporaryDirectory())
            system_args["data_dir"] = Path(tmp) / "state"
        system = ITagSystem(master_seed=args.seed, **system_args)
        provider = system.register_provider("smoke-provider")
        project = system.create_project(provider, "smoke", budget=args.tasks * 3)
        system.upload_resources(project, data.provider_corpus)
        system.start_project(project, noise_model=data.dataset.noise_model)
        driver = SessionDriver(
            system,
            project,
            readers=args.readers,
            writer_tasks=args.tasks,
            writers=args.writers,
            same_table=args.same_table,
        )
        report = driver.run()
        if args.durable:
            system.database.close()
        print(report.describe())
        return 0 if report.consistent else 1


def _default_lint_root() -> "Path":
    from pathlib import Path

    return Path(__file__).resolve().parent


def _default_baseline_path() -> "Path":
    """``lint_baseline.json`` at the repo root of a src-layout checkout
    (``src/repro`` -> two levels up); callers may override."""
    from pathlib import Path

    return Path(__file__).resolve().parent.parent.parent / "lint_baseline.json"


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.lint import (
        Baseline,
        all_rules,
        render_json,
        render_text,
        rule_ids,
        run_lint,
    )
    from .errors import ReproError

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id}: {rule.summary}")
        return 0
    unknown = [rule for rule in args.rules if rule not in rule_ids()]
    if unknown:
        raise ReproError(
            f"unknown lint rule(s) {unknown}; have {rule_ids()}"
        )
    roots = args.paths or [_default_lint_root()]
    baseline_path = args.baseline_file or _default_baseline_path()
    baseline = (
        Baseline.load(baseline_path) if args.baseline != "ignore" else None
    )
    result = run_lint(roots, rule_ids=args.rules or None, baseline=baseline)
    if args.baseline == "update":
        updated = Baseline.from_findings(
            result.all_raw_findings(), previous=baseline
        )
        updated.save(baseline_path)
        print(
            f"baseline updated: {baseline_path} "
            f"({len(updated.entries)} entr{'y' if len(updated.entries) == 1 else 'ies'})"
        )
        return 0
    print(render_json(result) if args.fmt == "json" else render_text(result))
    return 0 if result.clean else 1


def _cmd_store(args: argparse.Namespace) -> int:
    if args.store_command == "recover":
        return _cmd_store_recover(args)
    if args.store_command == "checkpoint":
        return _cmd_store_checkpoint(args)
    if args.store_command == "smoke":
        return _cmd_store_smoke(args)
    return _cmd_store_explain(args)


def _cmd_store_explain(args: argparse.Namespace) -> int:
    from .store import Query, QueryError

    database = _populate_system_database(max(args.rows, 0))
    table = database.table(args.table)
    query = Query(table)
    for expression in args.where:
        query = query.where(_parse_where(table.schema, expression))
    if args.order_by:
        query = query.order_by(args.order_by, descending=args.descending)
    if (args.on or args.how) and not args.join:
        raise QueryError("--on/--how require a matching --join TABLE")
    if args.join:
        if len(args.on) != len(args.join):
            raise QueryError(
                f"--join needs one --on LEFT=RIGHT per join "
                f"(got {len(args.join)} join(s), {len(args.on)} --on)"
            )
        if args.how and len(args.how) != len(args.join):
            # argparse cannot see flag interleaving, so partial --how
            # lists pair by position — demand one per join instead of
            # silently guessing which join the user meant
            raise QueryError(
                f"--how must be given once per --join or not at all "
                f"(got {len(args.join)} join(s), {len(args.how)} --how)"
            )
        joined = None
        for position, (join_table, on) in enumerate(zip(args.join, args.on)):
            left_key, separator, right_key = on.partition("=")
            if not separator:
                raise QueryError(f"cannot parse --on {on!r}; expected LEFT=RIGHT")
            how = args.how[position] if position < len(args.how) else "inner"
            join_args = dict(
                on=(left_key.strip(), right_key.strip()),
                how=how,
                prefix_right=f"{join_table}_",
            )
            if joined is None:
                joined = query.join(database.table(join_table), **join_args)
            else:
                joined = joined.join(database.table(join_table), **join_args)
        if args.offset:
            joined = joined.offset(args.offset)
        if args.limit is not None:
            joined = joined.limit(args.limit)
        print(joined.explain())
        return 0
    if args.offset:
        query = query.offset(args.offset)
    if args.limit is not None:
        query = query.limit(args.limit)
    print(query.explain())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "version":
            return _cmd_version()
        if args.command == "list-experiments":
            return _cmd_list_experiments()
        if args.command == "run-experiment":
            return _cmd_run_experiment(args)
        if args.command == "run-all":
            return _cmd_run_all(args)
        if args.command == "generate-dataset":
            return _cmd_generate_dataset(args)
        if args.command == "demo":
            return _cmd_demo(args)
        if args.command == "store":
            return _cmd_store(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
