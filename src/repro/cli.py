"""Command-line interface: ``itag`` (or ``python -m repro``).

Subcommands::

    itag list-experiments
    itag run-experiment EXP-T1 [--fast] [--save out.json]
    itag generate-dataset --resources 300 --posts 3000 --seed 7 \\
        [--out corpus.json.gz] [--report]
    itag demo [--seed 11]
    itag version
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .errors import ReproError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="itag",
        description="Reproduction of 'iTag: Incentive-Based Tagging' (ICDE 2014)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("version", help="print the package version")

    subparsers.add_parser(
        "list-experiments", help="list reproducible tables/figures"
    )

    run_parser = subparsers.add_parser(
        "run-experiment", help="run one experiment and print its report"
    )
    run_parser.add_argument("experiment_id", help="e.g. EXP-T1 (see list-experiments)")
    run_parser.add_argument(
        "--fast", action="store_true", help="CI-sized variant (seconds, looser stats)"
    )
    run_parser.add_argument("--save", metavar="PATH", help="save the result as JSON")

    run_all_parser = subparsers.add_parser(
        "run-all", help="run every experiment, write reports + SUMMARY.md"
    )
    run_all_parser.add_argument("--fast", action="store_true")
    run_all_parser.add_argument("--out", metavar="DIR", help="report directory")
    run_all_parser.add_argument(
        "--only", nargs="+", metavar="EXP", help="subset of experiment ids"
    )

    dataset_parser = subparsers.add_parser(
        "generate-dataset", help="generate a Delicious-like corpus"
    )
    dataset_parser.add_argument("--resources", type=int, default=300)
    dataset_parser.add_argument("--posts", type=int, default=3000)
    dataset_parser.add_argument("--seed", type=int, default=0)
    dataset_parser.add_argument("--out", metavar="PATH", help="write corpus JSON(.gz)")
    dataset_parser.add_argument(
        "--report", action="store_true", help="print skew statistics"
    )

    demo_parser = subparsers.add_parser(
        "demo", help="run the scripted provider/tagger demo (Figs. 3-8)"
    )
    demo_parser.add_argument("--seed", type=int, default=11)
    return parser


def _cmd_version() -> int:
    print(f"repro {__version__}")
    return 0


def _cmd_list_experiments() -> int:
    from .experiments import list_experiments

    rows = list_experiments()
    width = max(len(row[0]) for row in rows)
    for experiment_id, title, artifact in rows:
        print(f"{experiment_id.ljust(width)}  {title}  [{artifact}]")
    return 0


def _cmd_run_experiment(args: argparse.Namespace) -> int:
    from .experiments import run_experiment

    result = run_experiment(args.experiment_id, fast=args.fast)
    print(result.to_text())
    if args.save:
        path = result.save(args.save)
        print(f"saved: {path}")
    return 0 if result.all_claims_pass else 1


def _cmd_run_all(args: argparse.Namespace) -> int:
    from .experiments.runner import run_all

    summary = run_all(fast=args.fast, out_dir=args.out, only=args.only)
    passed, total = summary.total_claims()
    for experiment_id in sorted(summary.results):
        result = summary.results[experiment_id]
        ok = sum(1 for claim in result.claims if claim.passed)
        print(
            f"{experiment_id:8s} {ok}/{len(result.claims)} claims  "
            f"({summary.elapsed_seconds[experiment_id]:.1f}s)  {result.title}"
        )
    for experiment_id, message in sorted(summary.errors.items()):
        print(f"{experiment_id:8s} ERROR: {message}")
    print(f"total: {passed}/{total} claims pass")
    if args.out:
        print(f"reports: {args.out}/SUMMARY.md")
    return 0 if summary.all_claims_pass else 1


def _cmd_generate_dataset(args: argparse.Namespace) -> int:
    from .datasets import dataset_report, make_delicious_like, save_corpus

    data = make_delicious_like(
        n_resources=args.resources,
        initial_posts_total=args.posts,
        master_seed=args.seed,
    )
    print(data.describe())
    if args.report:
        print(dataset_report(data.dataset.corpus))
    if args.out:
        path = save_corpus(data.dataset.corpus, args.out)
        print(f"saved: {path}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .experiments.harness import CampaignSpec
    from .experiments.system_screens import run as run_screens

    result = run_screens(
        CampaignSpec(
            n_resources=30,
            initial_posts_total=200,
            population_size=40,
            budget=150,
            seeds=(args.seed,),
        )
    )
    print(result.to_text())
    return 0 if result.all_claims_pass else 1


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "version":
            return _cmd_version()
        if args.command == "list-experiments":
            return _cmd_list_experiments()
        if args.command == "run-experiment":
            return _cmd_run_experiment(args)
        if args.command == "run-all":
            return _cmd_run_all(args)
        if args.command == "generate-dataset":
            return _cmd_generate_dataset(args)
        if args.command == "demo":
            return _cmd_demo(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")
    return 2  # pragma: no cover - parser.error raises


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
