"""EXP-TH — Table I (MU row): resources satisfying the quality bar.

Regenerates the threshold-satisfaction-vs-budget series: MU (and FP-MU)
push the most resources over the quality requirement.
"""

from repro.experiments import threshold


def test_exp_th_threshold_satisfaction(run_experiment_once):
    result = run_experiment_once(lambda: threshold.run(threshold.DEFAULT_SPEC))
    assert len(result.series) == len(threshold.STRATEGIES)
