"""EXP-P — Secs. I/III: platform choice (MTurk vs expert community).

Regenerates the platform comparison for specialist corpora: quality and
cost-per-quality of the same campaign on the two worker pools.
"""

from repro.experiments import platform_choice


def test_exp_p_platform_choice(run_experiment_once):
    result = run_experiment_once(
        lambda: platform_choice.run(platform_choice.DEFAULT_SPEC)
    )
    assert len(result.rows) == 2
