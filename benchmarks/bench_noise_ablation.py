"""EXP-N — Sec. I robustness: strategy ordering under tagger noise.

Regenerates the noise-rate sweep: achievable quality falls with ε but
the informed-beats-FC ordering survives every noise level.
"""

from repro.experiments import noise_ablation


def test_exp_n_noise_rate_sweep(run_experiment_once):
    result = run_experiment_once(
        lambda: noise_ablation.run(noise_ablation.DEFAULT_SPEC)
    )
    assert len(result.series) == len(noise_ablation.STRATEGIES)
