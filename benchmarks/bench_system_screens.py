"""EXP-UI — Figs. 3-8: the system screens over a scripted campaign.

Drives the full provider/tagger scenario through the facade (create,
upload, start, run, promote, stop, add budget, switch strategy,
complete) and checks every screen's documented behaviour.
"""

from repro.experiments import system_screens


def test_exp_ui_system_screens(run_experiment_once):
    result = run_experiment_once(
        lambda: system_screens.run(system_screens.DEFAULT_SPEC)
    )
    rendered = {row[0] for row in result.rows}
    assert {"Fig.3 provider console", "Fig.5 project details"} <= rendered
