"""EXP-B — Algorithm-1 batch-size ablation.

How stale statistics (UPDATE() once per batch instead of per task)
affect FP and MU quality.
"""

from repro.experiments import batching


def test_exp_b_batch_size_ablation(run_experiment_once):
    result = run_experiment_once(lambda: batching.run(batching.DEFAULT_SPEC))
    assert result.rows
