"""EXP-I — incomplete posts: tagger thoroughness vs achievable quality.

Sweeps mean post size / vocabulary breadth; informed allocation stays
ahead of free choice at every incompleteness level.
"""

from repro.experiments import incompleteness


def test_exp_i_incompleteness_sweep(run_experiment_once):
    result = run_experiment_once(
        lambda: incompleteness.run(incompleteness.DEFAULT_SPEC)
    )
    assert result.rows
