"""EXP-LQ — Table I (FP row): shrinking the low-quality tail.

Regenerates the low-quality-count-vs-budget series: FP (and FP-MU)
drain the tail fastest while FC leaves it nearly untouched.
"""

from repro.experiments import low_quality


def test_exp_lq_low_quality_reduction(run_experiment_once):
    result = run_experiment_once(lambda: low_quality.run(low_quality.DEFAULT_SPEC))
    assert len(result.series) == len(low_quality.STRATEGIES)
