"""EXP-D1 — Sec. IV demonstration: quality vs budget vs optimal.

Regenerates the demonstration's headline figure: oracle corpus quality
as a function of spent budget for FC/FP/MU/FP-MU against the optimal
allocation, on the Delicious-like corpus.
"""

from repro.experiments import demo_budget


def test_exp_d1_quality_vs_budget_curves(run_experiment_once):
    result = run_experiment_once(lambda: demo_budget.run(demo_budget.DEFAULT_SPEC))
    # One series per strategy plus the held-out trace-replay arm.
    assert len(result.series) >= len(demo_budget.STRATEGIES)
