"""EXP-C1 — the quality metric's convergence figure ``q_i(k)``.

Regenerates the rfd-stability convergence curve: oracle and observable
quality vs number of posts, with diminishing returns — the property the
whole budget-allocation problem rests on (Sec. II).
"""

from repro.experiments import convergence


def test_exp_c1_quality_convergence_curve(run_experiment_once):
    result = run_experiment_once(lambda: convergence.run(convergence.DEFAULT_SPEC))
    oracle = next(series for series in result.series if series.name == "oracle")
    assert oracle.ys[-1] > oracle.ys[0]
