"""EXP-T1 — Table I: the strategy comparison (paper-scale).

Regenerates the Table-I characteristics: per-strategy quality
improvement, low-quality tail, threshold satisfaction, and checks the
published ordering claims (FC weak, FP tail-reduction, MU threshold,
FP-MU most effective, simple ≈ optimal).
"""

from repro.experiments import table1


def test_exp_t1_table1_strategy_comparison(run_experiment_once):
    result = run_experiment_once(lambda: table1.run(table1.DEFAULT_SPEC))
    assert len(result.rows) == len(table1.STRATEGIES)
