"""EXP-POP — the Sec. I motivation: the popularity/quality gap.

Quality stratified by popularity quartile before budget, after FC, and
after FP-MU: FC preserves the gap, FP-MU closes it.
"""

from repro.experiments import popularity_gap


def test_exp_pop_popularity_gap(run_experiment_once):
    result = run_experiment_once(
        lambda: popularity_gap.run(popularity_gap.DEFAULT_SPEC)
    )
    assert len(result.rows) == 3
