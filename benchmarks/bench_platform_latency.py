"""EXP-L — platform turnaround/makespan (speed side of platform choice).

Publishes a burst of tasks through the asynchronous platform machinery
and measures mean turnaround and makespan on each pool.
"""

from repro.experiments import latency


def test_exp_l_platform_turnaround(run_experiment_once):
    result = run_experiment_once(lambda: latency.run(latency.DEFAULT_SPEC))
    assert len(result.rows) == 2
