"""EXP-ST — Fig. 2 substrate: embedded-store throughput.

Microbenchmarks of the MySQL-substitute under campaign-shaped
workloads (bulk insert, indexed point queries on the live table and on
snapshot views, cost-based And/top-k queries vs. their
full-scan/full-sort baselines, planned joins vs. the materializing
hash_join helper, warm plan-cache vs. cold planning, maintained
statistics vs. their O(n) baselines, transactional updates, WAL,
group-commit fsync policies, concurrent snapshot readers vs. a
transactional writer, crash recovery).
"""

from repro.experiments import store_ops


def test_exp_st_store_throughput(run_experiment_once, tmp_path):
    result = run_experiment_once(
        lambda: store_ops.run(rows=5000, wal_path=tmp_path / "bench.wal")
    )
    assert len(result.rows) == 24
