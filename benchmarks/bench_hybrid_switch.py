"""EXP-H — Table I (FP-MU row) ablation: the FP→MU switch rule.

Regenerates the switch-point sweep (coverage rule and budget-fraction
rule) showing the hybrid is robust to its one knob.
"""

from repro.experiments import hybrid_switch


def test_exp_h_switch_point_ablation(run_experiment_once):
    result = run_experiment_once(
        lambda: hybrid_switch.run(hybrid_switch.DEFAULT_SPEC)
    )
    assert result.rows
