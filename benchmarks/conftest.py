"""Benchmark harness configuration.

Each benchmark runs one paper experiment at full (paper-scale)
parameters exactly once (``rounds=1``) — the experiments are end-to-end
campaigns, not microbenchmarks, so statistical timing repetition would
multiply minutes for no insight.  Every benchmark:

- prints the experiment report (the rows/series the paper reports),
- saves it under ``benchmarks/out/<EXP-ID>.{txt,json}``,
- asserts the paper's claims (shape checks) hold.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def report_dir() -> Path:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    return OUT_DIR


@pytest.fixture()
def run_experiment_once(benchmark, report_dir):
    """Run an experiment callable once under the benchmark timer and
    persist + print its report."""

    def _run(experiment_fn, *, expect_claims: bool = True):
        result = benchmark.pedantic(experiment_fn, rounds=1, iterations=1)
        text = result.to_text()
        print()
        print(text)
        (report_dir / f"{result.experiment_id}.txt").write_text(
            text + "\n", encoding="utf-8"
        )
        result.save(report_dir / f"{result.experiment_id}.json")
        if expect_claims:
            failed = [str(claim) for claim in result.claims if not claim.passed]
            assert not failed, f"paper claims failed: {failed}"
        return result

    return _run
