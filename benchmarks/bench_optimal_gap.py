"""EXP-OPT — Sec. IV: the optimal-allocation yardstick.

Cross-checks greedy == DP on concave oracle curves (and DP > greedy on
a non-concave trap), then regenerates the strategy-vs-optimal gap table.
"""

from repro.experiments import optimal_gap


def test_exp_opt_greedy_dp_and_gap(run_experiment_once):
    result = run_experiment_once(lambda: optimal_gap.run(optimal_gap.DEFAULT_SPEC))
    assert any("greedy == DP" in claim.claim for claim in result.claims)
