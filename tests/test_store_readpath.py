"""The zero-copy read pipeline's safety and equivalence contracts.

1. **Boundary-copy safety** (hypothesis): rows returned from any public
   read — query execution, scans, gets, pk fetches — can be mutated
   arbitrarily by the caller without corrupting table or index state.
   Internally plans stream row *references*; the copy happens exactly
   once at the API boundary, and this property is what makes that
   discipline safe to rely on.
2. **Live-vs-view equivalence**: a snapshot view captured from a quiet
   table answers every planned query byte-identically to the live
   table, using the *same* indexed access paths (copy-on-write index
   snapshots), and keeps answering byte-identically to its own frozen
   row image under concurrent writer load.
3. **Copy-on-write index snapshots**: writers detach lazily; pinned
   snapshots never observe later mutations.
4. **Plan-cache selectivity re-check**: a plan compiled for a narrow
   binding is replanned — not reused — for a much wider binding of the
   same shape.
"""

from __future__ import annotations

import json
import threading

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    And,
    Between,
    Column,
    Database,
    DataType,
    Eq,
    In,
    Query,
    Schema,
)


def _schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("kind", DataType.TEXT),
            Column("score", DataType.FLOAT, nullable=True),
            Column("payload", DataType.JSON, nullable=True),
        ],
        primary_key="id",
    )


def _build(rows):
    database = Database("readpath")
    table = database.create_table("t", _schema())
    table.create_index("kind", kind="hash")
    table.create_index("score", kind="sorted")
    for kind, score in rows:
        table.insert({"kind": kind, "score": score, "payload": None})
    return database, table


def _canonical(rows) -> str:
    return json.dumps(list(rows), sort_keys=True, default=repr)


_rows_strategy = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.one_of(st.none(), st.floats(min_value=0, max_value=1, width=16)),
    ),
    min_size=0,
    max_size=30,
)


class TestBoundaryCopySafety:
    @given(rows=_rows_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_mutating_returned_rows_never_corrupts_state(self, rows, data):
        database, table = _build(rows)
        before = _canonical(sorted(table.scan(), key=lambda r: r["id"]))
        queries = [
            lambda: Query(table).where(Eq("kind", "a")).all(),
            lambda: Query(table).where(Between("score", 0.2, 0.8)).all(),
            lambda: Query(table)
            .where(In("kind", ["a", "b"]))
            .order_by("score")
            .limit(5)
            .all(),
            lambda: [r for r in table.scan()],
            lambda: list(table.rows_for_pks(table.primary_keys())),
            lambda: [table.get(pk) for pk in table.primary_keys()[:3]],
            lambda: [row for row in [Query(table).first()] if row is not None],
        ]
        victims = data.draw(
            st.lists(st.sampled_from(queries), min_size=1, max_size=4)
        )
        for run in victims:
            for row in run():
                # trash every column, add junk keys, then gut the dict
                for key in list(row):
                    row[key] = object()
                row["__junk__"] = [1, 2, 3]
                row.clear()
        table.verify_indexes()
        after = _canonical(sorted(table.scan(), key=lambda r: r["id"]))
        assert after == before

    def test_view_rows_are_mutation_safe_too(self):
        _database, table = _build([("a", 0.5), ("b", 0.7)])
        view = table.read_view()
        for row in view.scan():
            row.clear()
        for row in Query(view).where(Eq("kind", "a")).all():
            row["kind"] = "mutated"
        assert _canonical(view.scan()) == _canonical(table.scan())
        table.verify_indexes()


class TestLiveViewEquivalence:
    def _battery(self, target):
        return [
            Query(target).where(Eq("kind", "a")).all(),
            Query(target).where(Eq("id", 3)).all(),
            Query(target).where(In("kind", ["a", "c"])).all(),
            Query(target).where(Between("score", 0.1, 0.9)).all(),
            Query(target)
            .where(And(Eq("kind", "b"), Between("score", 0.0, 1.0)))
            .all(),
            Query(target).order_by("score", descending=True).limit(4).all(),
            Query(target).where(Eq("kind", "a")).count(),
            Query(target).aggregate("score", "sum"),
        ]

    def test_view_plans_match_live_plans_and_results(self):
        _database, table = _build(
            [("a", 0.1), ("b", 0.5), ("a", 0.9), ("c", None), ("b", 0.3)] * 4
        )
        view = table.read_view()
        assert _canonical(self._battery(table)) == _canonical(self._battery(view))
        # same access paths, not a full-scan fallback
        for query, fragment in (
            (Query(view).where(Eq("kind", "a")), "hash-index"),
            (Query(view).where(Between("score", 0.2, 0.8)), "sorted-index-range"),
            (Query(view).order_by("score").limit(3), "top-k"),
            (Query(view).where(Eq("id", 1)), "pk-lookup"),
        ):
            assert fragment in query.explain()

    def test_live_indexed_reads_survive_same_bucket_writer(self):
        """Regression guard for the zero-copy pipeline: live iter_eq /
        iter_range capture their bucket/span atomically, so a reader
        streaming an equality or range query never crashes (or misses
        committed rows of an untouched generation) while a writer
        mutates the *same* bucket/span."""
        database, table = _build([("hot", i / 100) for i in range(100)])
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            stamp = 0
            while not stop.is_set():
                stamp += 1
                pk = (stamp % 100) + 1
                # flip kind in and out of the hot bucket + shift scores
                table.update(
                    pk,
                    {
                        "kind": "cold" if stamp % 2 else "hot",
                        "score": (stamp % 50) / 50,
                    },
                )

        def reader():
            try:
                for _ in range(300):
                    rows = Query(table).where(Eq("kind", "hot")).all()
                    assert all(r["kind"] == "hot" for r in rows)
                    Query(table).where(Between("score", 0.2, 0.8)).count()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(repr(exc))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join(timeout=30.0)
        stop.set()
        writer_thread.join(timeout=30.0)
        assert not errors, errors
        table.verify_indexes()

    def test_view_results_byte_identical_under_writer_load(self):
        database, table = _build([("a", 0.2), ("b", 0.6)] * 20)
        stop = threading.Event()
        errors: list[str] = []

        def writer():
            stamp = 0
            while not stop.is_set():
                stamp += 1
                with database.transaction():
                    table.update((stamp % 40) + 1, {"score": (stamp % 10) / 10})
                if stamp % 7 == 0:
                    table.insert({"kind": "c", "score": 0.5, "payload": None})

        def reader():
            try:
                for _ in range(60):
                    view = table.read_view()
                    # indexed plan vs brute force over the same frozen
                    # rows: byte-identical, twice (repeatable read)
                    brute = sorted(
                        (r for r in view.scan() if r["kind"] == "a"),
                        key=lambda r: r["id"],
                    )
                    for _repeat in range(2):
                        planned = sorted(
                            Query(view).where(Eq("kind", "a")).all(),
                            key=lambda r: r["id"],
                        )
                        if _canonical(planned) != _canonical(brute):
                            errors.append("planned view read != frozen scan")
                            return
                    ranged = Query(view).where(Between("score", 0.0, 1.0)).count()
                    if ranged != sum(
                        1 for r in view.scan() if r["score"] is not None
                    ):
                        errors.append("ranged view count != frozen scan")
                        return
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(repr(exc))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        stop.set()
        writer_thread.join(timeout=30.0)
        assert not errors, errors
        table.verify_indexes()


class TestCopyOnWriteIndexSnapshots:
    def test_hash_snapshot_pins_buckets(self):
        _database, table = _build([("a", 0.1), ("a", 0.2), ("b", 0.3)])
        index = table.index_for("kind")
        snap = index.snapshot()
        table.insert({"kind": "a", "score": 0.9, "payload": None})
        table.delete(3)  # the "b" row
        assert snap.lookup("a") == {1, 2}
        assert snap.lookup("b") == {3}
        assert snap.estimate_eq("a") == 2
        assert snap.n_distinct() == 2
        assert len(snap) == 3
        assert index.lookup("a") == {1, 2, 4}
        assert index.lookup("b") == set()

    def test_sorted_snapshot_pins_spans_and_nulls(self):
        _database, table = _build([("a", 0.1), ("b", 0.5), ("c", None)])
        index = table.index_for("score")
        snap = index.snapshot()
        table.update(1, {"score": 0.7})
        table.update(3, {"score": 0.2})
        assert snap.range(0.0, 1.0) == [1, 2]
        assert snap.lookup(None) == {3}
        assert snap.n_distinct() == 3  # 0.1, 0.5, NULL group
        assert index.lookup(None) == set()
        assert index.range(0.0, 1.0) == [3, 2, 1]

    def test_snapshot_generations_are_independent(self):
        _database, table = _build([("a", 0.1)])
        index = table.index_for("kind")
        first = index.snapshot()
        table.insert({"kind": "a", "score": 0.2, "payload": None})
        second = index.snapshot()
        table.insert({"kind": "a", "score": 0.3, "payload": None})
        assert first.lookup("a") == {1}
        assert second.lookup("a") == {1, 2}
        assert index.lookup("a") == {1, 2, 3}

    def test_view_is_o1_and_stale_flag_still_works(self):
        _database, table = _build([("a", 0.1), ("b", 0.2)])
        view = table.read_view()
        assert not view.stale
        table.insert({"kind": "c", "score": 0.9, "payload": None})
        assert view.stale
        assert len(view) == 2
        assert Query(view).where(Eq("kind", "c")).all() == []


class TestPlanCacheSelectivityRecheck:
    def test_wide_binding_replans_instead_of_reusing(self):
        database = Database("recheck")
        table = database.create_table("t", _schema())
        table.create_index("kind", kind="hash")
        for position in range(400):
            table.insert(
                {
                    "kind": "rare" if position < 4 else "common",
                    "score": (position % 10) / 10,
                    "payload": None,
                }
            )
        table.plan_cache.clear()
        narrow = Query(table).where(Eq("kind", "rare"))
        assert narrow.count() == 4
        assert "[plan-cache: miss]" in narrow.explain() or table.plan_cache.misses
        wide = Query(table).where(Eq("kind", "common"))
        assert wide.count() == 396
        assert table.plan_cache.rechecks >= 1
        # the wide plan overwrote the entry; wide now hits, and narrow
        # passes the re-check (narrower than cached is always safe)
        assert "[plan-cache: hit]" in Query(table).where(Eq("kind", "common")).explain()
        assert "[plan-cache: hit]" in Query(table).where(Eq("kind", "rare")).explain()

    def test_similar_bindings_still_hit(self):
        database = Database("recheck2")
        table = database.create_table("t", _schema())
        table.create_index("kind", kind="hash")
        for position in range(100):
            table.insert(
                {"kind": f"k{position % 4}", "score": 0.5, "payload": None}
            )
        table.plan_cache.clear()
        Query(table).where(Eq("kind", "k0")).count()
        before = table.plan_cache.rechecks
        assert "[plan-cache: hit]" in Query(table).where(Eq("kind", "k1")).explain()
        assert table.plan_cache.rechecks == before
