"""Shared fixtures: small deterministic datasets, stores, systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_delicious_like
from repro.rng import RngRegistry
from repro.store import Column, Database, DataType, Schema
from repro.tagging import Corpus, Post, TaggedResource, Vocabulary


@pytest.fixture(scope="session")
def small_data():
    """A session-scoped small Delicious-like dataset (read-only!).

    Tests that mutate the corpus must use ``small_data_copy`` or build
    their own.
    """
    return make_delicious_like(
        n_resources=30,
        initial_posts_total=240,
        master_seed=42,
        population_size=30,
    )


@pytest.fixture()
def small_data_copy(small_data):
    """A mutable deep copy of the small dataset's provider corpus."""
    return small_data.split.provider_corpus.copy()


@pytest.fixture()
def rng():
    return RngRegistry(123)


@pytest.fixture()
def resources_table():
    """A fresh store table with the canonical test schema + indexes."""
    database = Database("test")
    schema = Schema(
        [
            Column("id", DataType.INT),
            Column("name", DataType.TEXT, unique=True),
            Column("kind", DataType.TEXT),
            Column("quality", DataType.FLOAT, nullable=True),
            Column("meta", DataType.JSON, nullable=True),
        ],
        primary_key="id",
    )
    table = database.create_table("resources", schema)
    table.create_index("kind", kind="hash")
    table.create_index("quality", kind="sorted")
    return database, table


@pytest.fixture()
def tiny_corpus():
    """Three resources, tiny vocab, hand-built posts."""
    vocabulary = Vocabulary(["cat", "dog", "bird", "fish", "noise"])
    corpus = Corpus(vocabulary)
    theta_a = np.array([0.6, 0.4, 0.0, 0.0, 0.0])
    theta_b = np.array([0.0, 0.0, 0.7, 0.3, 0.0])
    theta_c = np.array([0.25, 0.25, 0.25, 0.25, 0.0])
    corpus.add_resource(TaggedResource(1, "a", theta=theta_a, popularity=10.0))
    corpus.add_resource(TaggedResource(2, "b", theta=theta_b, popularity=1.0))
    corpus.add_resource(TaggedResource(3, "c", theta=theta_c, popularity=1.0))
    corpus.add_post(Post.from_tags(1, 100, [0, 1]))
    corpus.add_post(Post.from_tags(1, 101, [0]))
    corpus.add_post(Post.from_tags(2, 100, [2, 3]))
    return corpus
