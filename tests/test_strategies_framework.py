"""Unit tests: the Algorithm-1 engine (budget, controls, trajectories)."""

import numpy as np
import pytest

from repro.errors import BudgetError, StrategyError
from repro.quality import AnalyticGain, QualityBoard
from repro.strategies import (
    AllocationEngine,
    FewestPostsFirst,
    MostUnstableFirst,
    OracleGreedy,
    make_strategy,
)


def make_engine(data, corpus, *, budget=50, strategy=None, record_every=10, seed=0):
    return AllocationEngine(
        corpus,
        data.dataset.population,
        strategy if strategy is not None else FewestPostsFirst(),
        budget=budget,
        board=QualityBoard(corpus),
        oracle_targets=data.dataset.oracle_targets(),
        rng=np.random.default_rng(seed),
        record_every=record_every,
    )


class TestBudgetAccounting:
    def test_budget_fully_spent(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=40)
        result = engine.run()
        assert result.budget_spent == 40
        assert sum(result.allocation.values()) == 40

    def test_zero_budget_noop(self, small_data, small_data_copy):
        before = small_data_copy.total_posts()
        result = make_engine(small_data, small_data_copy, budget=0).run()
        assert result.budget_spent == 0
        assert small_data_copy.total_posts() == before

    def test_negative_budget_rejected(self, small_data, small_data_copy):
        with pytest.raises(BudgetError):
            make_engine(small_data, small_data_copy, budget=-1)

    def test_add_budget_mid_run(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=10)
        engine.step(10)
        assert engine.budget_remaining == 0
        engine.add_budget(5)
        assert engine.budget_remaining == 5
        result = engine.run()
        assert result.budget_spent == 15

    def test_posts_added_match_budget(self, small_data, small_data_copy):
        before = small_data_copy.total_posts()
        make_engine(small_data, small_data_copy, budget=25).run()
        assert small_data_copy.total_posts() == before + 25


class TestTrajectory:
    def test_recording_cadence(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=30, record_every=10)
        result = engine.run()
        spent = [point.budget_spent for point in result.trajectory]
        assert spent == [0, 10, 20, 30]

    def test_series_accessors(self, small_data, small_data_copy):
        result = make_engine(small_data, small_data_copy, budget=20).run()
        xs, ys = result.series("oracle")
        assert len(xs) == len(ys) >= 2
        xs2, ys2 = result.series("observable")
        assert xs2 == xs
        with pytest.raises(ValueError):
            result.series("bogus")

    def test_improvements_consistent(self, small_data, small_data_copy):
        result = make_engine(small_data, small_data_copy, budget=30).run()
        assert result.oracle_improvement == pytest.approx(
            result.final_oracle - result.initial_oracle
        )
        assert result.observable_improvement == pytest.approx(
            result.final_observable - result.initial_observable
        )

    def test_no_oracle_targets_is_fine(self, small_data, small_data_copy):
        engine = AllocationEngine(
            small_data_copy,
            small_data.dataset.population,
            FewestPostsFirst(),
            budget=10,
            rng=np.random.default_rng(0),
        )
        result = engine.run()
        assert result.initial_oracle is None
        assert result.oracle_improvement is None


class TestProviderControls:
    def test_promote_takes_next_slot(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=10)
        target = max(
            small_data_copy.resource_ids(),
            key=lambda rid: small_data_copy.resource(rid).n_posts,
        )
        engine.promote(target)
        chosen = []
        engine.on_task(lambda rid, _spent: chosen.append(rid))
        engine.step(1)
        assert chosen == [target]

    def test_stop_excludes_resource(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=30)
        victim = small_data_copy.resource_ids()[0]
        engine.stop(victim)
        result = engine.run()
        assert result.allocation[victim] == 0

    def test_resume_restores(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=5)
        victim = small_data_copy.resource_ids()[0]
        engine.stop(victim)
        engine.resume(victim)
        assert victim in engine.eligible

    def test_stop_all_halts_early(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=50)
        for resource_id in small_data_copy.resource_ids():
            engine.stop(resource_id)
        result = engine.run()
        assert result.budget_spent == 0

    def test_unknown_resource_controls_raise(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy)
        with pytest.raises(StrategyError):
            engine.promote(9999)
        with pytest.raises(StrategyError):
            engine.stop(9999)

    def test_switch_strategy_mid_run(self, small_data, small_data_copy):
        engine = make_engine(small_data, small_data_copy, budget=30)
        engine.step(10)
        engine.switch_strategy(MostUnstableFirst())
        result = engine.run()
        assert result.strategy_names == ["fp", "mu"]
        assert result.budget_spent == 30


class TestOracleGreedyOnline:
    def test_runs_and_allocates(self, small_data, small_data_copy):
        gain = AnalyticGain(
            small_data.dataset.oracle_targets(), small_data.dataset.mean_post_size
        )
        engine = make_engine(
            small_data, small_data_copy, budget=40, strategy=OracleGreedy(gain)
        )
        result = engine.run()
        assert result.budget_spent == 40
        # Greedy on concave gains spreads across under-tagged resources.
        assert max(result.allocation.values()) < 40

    def test_heap_respects_stop(self, small_data, small_data_copy):
        gain = AnalyticGain(
            small_data.dataset.oracle_targets(), small_data.dataset.mean_post_size
        )
        engine = make_engine(
            small_data, small_data_copy, budget=20, strategy=OracleGreedy(gain)
        )
        victim = small_data_copy.resource_ids()[0]
        engine.stop(victim)
        result = engine.run()
        assert result.allocation[victim] == 0

    def test_reset_reinitializes(self, small_data, small_data_copy):
        gain = AnalyticGain(
            small_data.dataset.oracle_targets(), small_data.dataset.mean_post_size
        )
        strategy = OracleGreedy(gain)
        make_engine(small_data, small_data_copy, budget=5, strategy=strategy).run()
        strategy.reset()
        assert not strategy._initialized
