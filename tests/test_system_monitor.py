"""Unit tests: the text renderings of Figs. 3-8."""

import pytest

from repro.datasets import make_delicious_like
from repro.system import (
    ITagSystem,
    add_project_summary,
    main_provider_screen,
    project_details_screen,
    resource_details_screen,
    tagger_projects_screen,
    tagging_screen,
)


@pytest.fixture(scope="module")
def ui_campaign():
    data = make_delicious_like(
        n_resources=12, initial_posts_total=80, master_seed=19, population_size=20
    )
    system = ITagSystem(master_seed=19)
    provider = system.register_provider("ui-provider")
    project = system.create_project(
        provider, "ui-project", budget=50, pay_per_task=0.07,
        strategy="fp-mu", platform="mturk", kind="image",
    )
    system.upload_resources(project, data.provider_corpus)
    system.start_project(project, noise_model=data.dataset.noise_model)
    system.run_project(project, tasks=25)
    return system, provider, project


class TestProviderScreens:
    def test_fig3_main_screen(self, ui_campaign):
        system, provider, _project = ui_campaign
        screen = main_provider_screen(system, provider)
        assert "ui-provider" in screen
        assert "ui-project" in screen
        assert "running" in screen
        assert "25/50" in screen
        assert "[Add Project]" in screen

    def test_fig4_add_project(self, ui_campaign):
        system, _provider, project = ui_campaign
        screen = add_project_summary(system, project)
        assert "budget      : 50 tasks" in screen
        assert "pay/task    : 0.070" in screen
        assert "resources   : 12 uploaded" in screen

    def test_fig5_project_details_has_chart(self, ui_campaign):
        system, _provider, project = ui_campaign
        screen = project_details_screen(system, project)
        assert "quality over budget" in screen
        assert "projected gain" in screen
        assert "strategy fp-mu" in screen

    def test_fig6_resource_details(self, ui_campaign):
        system, _provider, project = ui_campaign
        resource_id = system.resources.of_project(project)[0]["id"]
        screen = resource_details_screen(system, project, resource_id)
        assert "posts" in screen
        assert "[Promote]" in screen
        assert "notifications:" in screen

    def test_sorting_by_quality_on_main_screen(self, ui_campaign):
        system, provider, _project = ui_campaign
        second = system.create_project(provider, "zz-empty", budget=1)
        screen = main_provider_screen(system, provider)
        # Running project has quality > 0, draft has 0 -> listed first.
        assert screen.index("ui-project") < screen.index("zz-empty")


class TestTaggerScreens:
    def test_fig7_project_selection(self, ui_campaign):
        system, _provider, _project = ui_campaign
        screen = tagger_projects_screen(system)
        assert "pay/task" in screen
        assert "0.070" in screen
        assert "ui-provider" in screen

    def test_fig8_tagging_screen(self, ui_campaign):
        system, _provider, project = ui_campaign
        resource_id = system.resources.of_project(project)[0]["id"]
        screen = tagging_screen(system, project, resource_id)
        assert "[Add Tag]" in screen
        assert "existing tags:" in screen
