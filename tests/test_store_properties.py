"""Property-based tests (hypothesis) for the store substrate.

Invariants:

1. After any sequence of insert/update/delete, every secondary index
   exactly mirrors the rows (``verify_indexes``).
2. A rolled-back transaction leaves the database bit-identical.
3. WAL replay from an empty database reproduces the final state.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import (
    Column,
    Database,
    DataType,
    DuplicateKeyError,
    RowNotFoundError,
    Schema,
    WriteAheadLog,
)

# One op: (kind, pk-hint, value-hint)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=40,
)


def _schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("kind", DataType.TEXT),
            Column("score", DataType.FLOAT, nullable=True),
        ],
        primary_key="id",
    )


def _build() -> Database:
    database = Database("prop")
    table = database.create_table("t", _schema())
    table.create_index("kind", kind="hash")
    table.create_index("score", kind="sorted")
    return database


def _apply(table, op: str, pk: int, hint: int) -> None:
    kind = f"k{hint % 3}"
    score = None if hint == 5 else hint / 5.0
    try:
        if op == "insert":
            table.insert({"id": pk, "kind": kind, "score": score})
        elif op == "update":
            table.update(pk, {"kind": kind, "score": score})
        else:
            table.delete(pk)
    except (DuplicateKeyError, RowNotFoundError):
        pass  # collisions/misses are a legal part of random sequences


@given(_ops)
@settings(max_examples=60, deadline=None)
def test_indexes_mirror_rows_after_any_op_sequence(ops):
    database = _build()
    table = database.table("t")
    for op, pk, hint in ops:
        _apply(table, op, pk, hint)
    table.verify_indexes()


@given(_ops, _ops)
@settings(max_examples=40, deadline=None)
def test_rollback_restores_exact_state(setup_ops, txn_ops):
    database = _build()
    table = database.table("t")
    for op, pk, hint in setup_ops:
        _apply(table, op, pk, hint)
    before = database.to_snapshot()
    with pytest.raises(RuntimeError):
        with database.transaction():
            for op, pk, hint in txn_ops:
                _apply(table, op, pk, hint)
            raise RuntimeError("force rollback")
    assert database.to_snapshot() == before
    table.verify_indexes()


@given(_ops)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_wal_replay_reproduces_final_state(tmp_path_factory, ops):
    path = tmp_path_factory.mktemp("wal") / "p.wal"
    database = _build()
    wal = WriteAheadLog(path)
    database.attach_wal(wal)
    table = database.table("t")
    for op, pk, hint in ops:
        _apply(table, op, pk, hint)
    final = {row["id"]: row for row in table.scan()}

    recovered = _build()
    WriteAheadLog(path).replay_into(recovered)
    replayed = {row["id"]: row for row in recovered.table("t").scan()}
    assert replayed == final
