"""Property-based tests (hypothesis) for the store substrate.

Invariants:

1. After any sequence of insert/update/delete, every secondary index
   exactly mirrors the rows (``verify_indexes``).
2. A rolled-back transaction leaves the database bit-identical.
3. WAL replay from an empty database reproduces the final state.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import (
    Column,
    Database,
    DataType,
    DuplicateKeyError,
    RowNotFoundError,
    Schema,
    WriteAheadLog,
)

# One op: (kind, pk-hint, value-hint)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=5),
    ),
    min_size=1,
    max_size=40,
)


def _schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("kind", DataType.TEXT),
            Column("score", DataType.FLOAT, nullable=True),
        ],
        primary_key="id",
    )


def _build() -> Database:
    database = Database("prop")
    table = database.create_table("t", _schema())
    table.create_index("kind", kind="hash")
    table.create_index("score", kind="sorted")
    return database


def _apply(table, op: str, pk: int, hint: int) -> None:
    kind = f"k{hint % 3}"
    score = None if hint == 5 else hint / 5.0
    try:
        if op == "insert":
            table.insert({"id": pk, "kind": kind, "score": score})
        elif op == "update":
            table.update(pk, {"kind": kind, "score": score})
        else:
            table.delete(pk)
    except (DuplicateKeyError, RowNotFoundError):
        pass  # collisions/misses are a legal part of random sequences


@given(_ops)
@settings(max_examples=60, deadline=None)
def test_indexes_mirror_rows_after_any_op_sequence(ops):
    database = _build()
    table = database.table("t")
    for op, pk, hint in ops:
        _apply(table, op, pk, hint)
    table.verify_indexes()


@given(_ops, _ops)
@settings(max_examples=40, deadline=None)
def test_rollback_restores_exact_state(setup_ops, txn_ops):
    database = _build()
    table = database.table("t")
    for op, pk, hint in setup_ops:
        _apply(table, op, pk, hint)
    before = database.to_snapshot()
    with pytest.raises(RuntimeError):
        with database.transaction():
            for op, pk, hint in txn_ops:
                _apply(table, op, pk, hint)
            raise RuntimeError("force rollback")
    assert database.to_snapshot() == before
    table.verify_indexes()


@given(_ops)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_wal_replay_reproduces_final_state(tmp_path_factory, ops):
    path = tmp_path_factory.mktemp("wal") / "p.wal"
    database = _build()
    wal = WriteAheadLog(path)
    database.attach_wal(wal)
    table = database.table("t")
    for op, pk, hint in ops:
        _apply(table, op, pk, hint)
    final = {row["id"]: row for row in table.scan()}

    recovered = _build()
    WriteAheadLog(path).replay_into(recovered)
    replayed = {row["id"]: row for row in recovered.table("t").scan()}
    assert replayed == final


# ----------------------------------------------------------------------
# chunked sorted index vs a plain-sorted-list oracle
# ----------------------------------------------------------------------

# One index op: (kind, value-hint, pk-hint).  Small chunk bounds (patched
# below) make short sequences cross many chunk splits/unlinks.
_index_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "add", "add", "remove", "snapshot"]),
        st.integers(min_value=0, max_value=20),
        st.integers(min_value=0, max_value=60),
    ),
    max_size=120,
)


def _check_against_oracle(surface, oracle: list[tuple[int, int]]) -> None:
    """Compare every read path of a sorted index (live or snapshot)
    against the brute-force sorted list of (value, pk) pairs."""
    surface.verify_structure()
    assert list(surface.iter_items()) == oracle
    assert len(surface) == len(oracle)
    values = [value for value, _pk in oracle]
    assert surface.n_distinct() == len(set(values))
    assert surface.recount_distinct() == len(set(values))
    assert list(surface.iter_pks()) == [pk for _value, pk in oracle]
    # range reads at a few bound shapes, including reversed and half-open
    for low, high, inc_low, inc_high in [
        (None, None, True, True),
        (5, 15, True, True),
        (5, 15, False, False),
        (15, 5, True, True),
        (None, 10, True, False),
        (10, None, False, True),
    ]:
        expected = [
            pk
            for value, pk in oracle
            if (
                low is None
                or (value > low if not inc_low else value >= low)
            )
            and (
                high is None
                or (value < high if not inc_high else value <= high)
            )
        ]
        got = surface.range(low, high, include_low=inc_low, include_high=inc_high)
        assert got == expected
        assert list(
            surface.iter_range(
                low, high, include_low=inc_low, include_high=inc_high
            )
        ) == expected
        assert (
            surface.estimate_range(
                low, high, include_low=inc_low, include_high=inc_high
            )
            == len(expected)
        )
    for value in set(values) | {3, 99}:
        expected_pks = [pk for v, pk in oracle if v == value]
        assert list(surface.iter_eq(value)) == expected_pks
        assert surface.lookup(value) == set(expected_pks)
        assert surface.estimate_eq(value) == len(expected_pks)


@settings(max_examples=60, deadline=None)
@given(ops=_index_ops)
def test_chunked_sorted_index_matches_sorted_list_oracle(ops):
    """Insert/delete/snapshot interleavings leave the chunked index
    byte-identical to a plain sorted list, and every snapshot stays
    frozen at its generation (COW isolation)."""
    import bisect
    from unittest import mock

    from repro.store import index as index_module

    with mock.patch.object(index_module, "SORTED_CHUNK_TARGET", 4), \
            mock.patch.object(index_module, "SORTED_CHUNK_MAX", 8):
        index = index_module.SortedIndex("v")
        oracle: list[tuple[int, int]] = []
        pinned = []  # (snapshot, frozen oracle copy)
        for kind, value, pk in ops:
            if kind == "add":
                if (value, pk) in oracle:
                    continue  # table maintenance never double-adds
                index.add(value, pk)
                bisect.insort(oracle, (value, pk))
            elif kind == "remove":
                index.remove(value, pk)
                if (value, pk) in oracle:
                    oracle.remove((value, pk))
            else:
                pinned.append((index.snapshot(), list(oracle)))
        _check_against_oracle(index, oracle)
        for snapshot, frozen in pinned:
            _check_against_oracle(snapshot, frozen)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    count=st.integers(min_value=0, max_value=400),
)
def test_chunked_bulk_build_equals_incremental(seed, count):
    """SortedIndex.build (sort + chunking pass) is read-identical to n
    incremental adds, across duplicates and NULLs."""
    import random
    from unittest import mock

    from repro.store import index as index_module

    rng = random.Random(seed)
    pairs = [
        (rng.choice([None, *range(12)]), pk) for pk in range(count)
    ]
    with mock.patch.object(index_module, "SORTED_CHUNK_TARGET", 4), \
            mock.patch.object(index_module, "SORTED_CHUNK_MAX", 8):
        built = index_module.SortedIndex.build("v", pairs)
        grown = index_module.SortedIndex("v")
        for value, pk in pairs:
            grown.add(value, pk)
        built.verify_structure()
        grown.verify_structure()
        assert list(built.iter_items()) == list(grown.iter_items())
        assert list(built.iter_pks(descending=True)) == list(
            grown.iter_pks(descending=True)
        )
        assert built.lookup(None) == grown.lookup(None)
        assert built.n_distinct() == grown.n_distinct()
        assert len(built) == len(grown)
