"""Unit tests for experiment-module internals (not the full runs)."""

import numpy as np
import pytest

from repro.experiments.harness import CampaignSpec, per_resource_oracle, run_campaign
from repro.experiments.popularity_gap import _quartile_assignment
from repro.tagging import Corpus, TaggedResource, Vocabulary


class TestQuartileAssignment:
    def make_corpus(self, popularity_values):
        corpus = Corpus(Vocabulary(["a"]))
        for index, popularity in enumerate(popularity_values, start=1):
            corpus.add_resource(
                TaggedResource(index, f"r{index}", popularity=popularity)
            )
        return corpus

    def test_four_even_quartiles(self):
        corpus = self.make_corpus([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
        quartiles = _quartile_assignment(corpus)
        assert list(quartiles) == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_least_popular_is_quartile_zero(self):
        corpus = self.make_corpus([10.0, 0.1, 5.0, 7.0])
        quartiles = _quartile_assignment(corpus)
        ids = corpus.resource_ids()
        assert quartiles[ids.index(2)] == 0
        assert quartiles[ids.index(1)] == 3

    def test_every_quartile_populated(self):
        rng = np.random.default_rng(0)
        corpus = self.make_corpus(list(rng.uniform(0.1, 9.0, size=40)))
        quartiles = _quartile_assignment(corpus)
        assert {0, 1, 2, 3} == set(quartiles)
        counts = np.bincount(quartiles)
        assert counts.min() == counts.max() == 10


class TestCampaignHarness:
    def test_run_campaign_spends_budget(self):
        spec = CampaignSpec(
            n_resources=8, initial_posts_total=40, population_size=8,
            budget=12, seeds=(3,),
        )
        run = run_campaign(spec, 3, strategy="fp")
        assert run.result.budget_spent == 12
        assert run.seed == 3

    def test_per_resource_oracle_shape(self):
        spec = CampaignSpec(
            n_resources=8, initial_posts_total=40, population_size=8,
            budget=5, seeds=(3,),
        )
        run = run_campaign(spec, 3, strategy="fp")
        values = per_resource_oracle(run.data.split.provider_corpus, run.targets)
        assert values.shape == (8,)
        assert np.all((0.0 <= values) & (values <= 1.0))

    def test_optimal_strategy_gets_gain_model(self):
        spec = CampaignSpec(
            n_resources=6, initial_posts_total=30, population_size=6,
            budget=6, seeds=(2,),
        )
        run = run_campaign(spec, 2, strategy="optimal")
        assert run.result.budget_spent == 6


class TestIncompletenessGridValidation:
    def test_profile_grid_is_validated(self):
        from repro.experiments import incompleteness

        spec = CampaignSpec(
            n_resources=10, initial_posts_total=40, population_size=8,
            budget=10, seeds=(1,),
            extra={"grid": ((2.0, 1.0),)},
        )
        result = incompleteness.run(spec)
        assert len(result.rows) == 1
