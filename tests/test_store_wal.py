"""Unit tests: write-ahead log durability and recovery."""

import json

import pytest

from repro.store import (
    Column,
    Database,
    DataType,
    Schema,
    WalError,
    WriteAheadLog,
)


def make_database() -> Database:
    database = Database("walled")
    database.create_table(
        "items",
        Schema(
            [
                Column("id", DataType.INT),
                Column("value", DataType.TEXT),
                Column("score", DataType.FLOAT, nullable=True),
            ],
            primary_key="id",
        ),
    )
    return database


class TestAppendReplay:
    def test_replay_reproduces_state(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "a", "score": 0.1})
        table.insert({"value": "b", "score": 0.2})
        table.update(1, {"score": 0.9})
        table.delete(2)

        recovered = make_database()
        applied = WriteAheadLog(tmp_path / "db.wal").replay_into(recovered)
        assert applied == 4
        items = recovered.table("items")
        assert len(items) == 1
        assert items.get(1) == {"id": 1, "value": "a", "score": 0.9}

    def test_sequence_numbers_monotone(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal")
        database.attach_wal(wal)
        for index in range(5):
            database.table("items").insert({"value": f"v{index}"})
        records = wal.records()
        assert [record["seq"] for record in records] == [1, 2, 3, 4, 5]

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "db.wal"
        database = make_database()
        database.attach_wal(WriteAheadLog(path))
        database.table("items").insert({"value": "a"})
        database.detach_wal()

        wal2 = WriteAheadLog(path)
        assert wal2.sequence == 1
        database.attach_wal(wal2)
        database.table("items").insert({"value": "b"})
        assert wal2.records()[-1]["seq"] == 2

    def test_rolled_back_txn_replays_to_same_state(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "keep"})
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.insert({"value": "gone"})
                raise RuntimeError("boom")
        recovered = make_database()
        wal.replay_into(recovered)
        values = [row["value"] for row in recovered.table("items").scan()]
        assert values == ["keep"]

    def test_truncate_resets(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal")
        database = make_database()
        database.attach_wal(wal)
        database.table("items").insert({"value": "a"})
        wal.truncate()
        assert wal.records() == []
        assert wal.sequence == 0

    def test_checkpoint_snapshot_plus_wal(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "pre"})
        snapshot = database.checkpoint()
        table.insert({"value": "post"})

        recovered = Database.from_snapshot(snapshot)
        WriteAheadLog(tmp_path / "db.wal").replay_into(recovered)
        values = sorted(row["value"] for row in recovered.table("items").scan())
        assert values == ["post", "pre"]


class TestCorruption:
    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "db.wal"
        path.write_text('{"seq": 1, "op": "insert"}\nnot-json\n', encoding="utf-8")
        with pytest.raises(WalError, match="corrupt WAL line 2"):
            WriteAheadLog(path).records()

    def test_out_of_order_rejected(self, tmp_path):
        path = tmp_path / "db.wal"
        lines = [
            json.dumps({"seq": 2, "op": "insert", "table": "items", "pk": 1,
                        "row": {"id": 1, "value": "a", "score": None}}),
            json.dumps({"seq": 1, "op": "insert", "table": "items", "pk": 2,
                        "row": {"id": 2, "value": "b", "score": None}}),
        ]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(WalError, match="out of order"):
            WriteAheadLog(path).records()

    def test_empty_file_is_fine(self, tmp_path):
        path = tmp_path / "db.wal"
        path.touch()
        assert WriteAheadLog(path).records() == []
