"""Unit tests: commit-scoped WAL — framing, group commit, recovery."""

import os
import time

import pytest

from repro.store import (
    Column,
    Database,
    DataType,
    Schema,
    WalError,
    WriteAheadLog,
)


def segment_files(path):
    """The on-disk segment files of a WAL directory, oldest first."""
    return sorted(child for child in path.iterdir() if child.name.startswith("wal-"))


def make_database() -> Database:
    database = Database("walled")
    database.create_table(
        "items",
        Schema(
            [
                Column("id", DataType.INT),
                Column("value", DataType.TEXT),
                Column("score", DataType.FLOAT, nullable=True),
            ],
            primary_key="id",
        ),
    )
    return database


class TestCommitScopedRecords:
    def test_replay_reproduces_state(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "a", "score": 0.1})
        table.insert({"value": "b", "score": 0.2})
        table.update(1, {"score": 0.9})
        table.delete(2)
        wal.flush()

        recovered = make_database()
        applied = WriteAheadLog(tmp_path / "db.wal").replay_into(recovered)
        assert applied == 4
        items = recovered.table("items")
        assert len(items) == 1
        assert items.get(1) == {"id": 1, "value": "a", "score": 0.9}

    def test_transaction_is_one_record(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        with database.transaction():
            table.insert({"value": "a"})
            table.insert({"value": "b"})
            table.update(1, {"value": "a2"})
        records = wal.records()
        assert len(records) == 1
        assert len(records[0].changes) == 3
        assert records[0].lsn == 1

    def test_lsn_monotone_and_len_incremental(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        for index in range(5):
            database.table("items").insert({"value": f"v{index}"})
        assert len(wal) == 5  # tracked without re-reading the file
        assert [record.lsn for record in wal.records()] == [1, 2, 3, 4, 5]

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "db.wal"
        database = make_database()
        wal = WriteAheadLog(path, fsync="never")
        database.attach_wal(wal)
        database.table("items").insert({"value": "a"})
        database.close()

        wal2 = WriteAheadLog(path, fsync="never")
        assert wal2.sequence == 1
        assert len(wal2) == 1
        database.attach_wal(wal2)
        database.table("items").insert({"value": "b"})
        assert wal2.records()[-1].lsn == 2

    def test_aborted_transaction_leaves_zero_net_log_growth(self, tmp_path):
        """Regression: aborted transactions used to be journaled twice
        (changes plus their undo inverses); now they never touch the log."""
        path = tmp_path / "db.wal"
        database = make_database()
        wal = WriteAheadLog(path, fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "keep"})
        size_before = wal.total_bytes()
        records_before = len(wal)
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.insert({"value": "gone"})
                table.update(1, {"value": "mutated"})
                raise RuntimeError("boom")
        assert wal.total_bytes() == size_before
        assert len(wal) == records_before
        assert table.get(1)["value"] == "keep"

    def test_rolled_back_txn_replays_to_same_state(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "keep"})
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.insert({"value": "gone"})
                raise RuntimeError("boom")
        recovered = make_database()
        wal.replay_into(recovered)
        values = [row["value"] for row in recovered.table("items").scan()]
        assert values == ["keep"]

    def test_truncate_preserves_lsn_floor(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database = make_database()
        database.attach_wal(wal)
        database.table("items").insert({"value": "a"})
        dropped = wal.truncate()
        assert dropped == 1
        assert wal.records() == []
        assert len(wal) == 0
        # the sequence never rewinds: post-truncate records must sort
        # after everything a checkpoint may have covered
        assert wal.sequence == 1
        database.table("items").insert({"value": "b"})
        assert wal.records()[0].lsn == 2

    def test_truncate_through_drops_whole_covered_segments(self, tmp_path):
        # segment_bytes=1: every commit rotates, one record per segment
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never", segment_bytes=1)
        database = make_database()
        database.attach_wal(wal)
        for index in range(4):
            database.table("items").insert({"value": f"v{index}"})
        assert wal.stats()["segments"] >= 4
        dropped = wal.truncate_through(2)
        assert dropped == 2
        assert [record.lsn for record in wal.records()] == [3, 4]
        assert wal.stats()["segments_dropped"] >= 2

    def test_truncate_through_keeps_partially_covered_segment(self, tmp_path):
        """A segment that still holds live records is kept whole —
        pruning never rewrites a segment.  Recovery filters the covered
        records by LSN, so keeping them is harmless."""
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database = make_database()
        database.attach_wal(wal)
        for index in range(4):
            database.table("items").insert({"value": f"v{index}"})
        dropped = wal.truncate_through(2)
        assert dropped == 0  # all four share the active segment
        assert [record.lsn for record in wal.records()] == [1, 2, 3, 4]

    def test_checkpoint_snapshot_plus_wal(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "pre"})
        snapshot = database.checkpoint()
        table.insert({"value": "post"})
        database.close()

        recovered = Database.from_snapshot(snapshot)
        WriteAheadLog(tmp_path / "db.wal").replay_into(recovered)
        values = sorted(row["value"] for row in recovered.table("items").scan())
        assert values == ["post", "pre"]

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(WalError, match="fsync policy"):
            WriteAheadLog(tmp_path / "db.wal", fsync="sometimes")

    def test_commit_after_close_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        wal.close()
        with pytest.raises(WalError, match="closed"):
            wal.commit_transaction([("insert", "items", 1, {"id": 1})])

    def test_write_failure_is_not_acked_and_breaks_the_log(self, tmp_path, monkeypatch):
        """A commit whose leader write fails must raise — never report
        durability it does not have — and the log refuses further use."""
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        table.insert({"value": "good"})

        monkeypatch.setattr(
            wal._handle, "write",
            lambda data: (_ for _ in ()).throw(OSError("disk full")),
            raising=False,
        )
        with pytest.raises(WalError, match="disk full"):
            with database.transaction():
                table.insert({"value": "lost"})
        monkeypatch.undo()
        # the failed transaction rolled back in memory: log and memory agree
        assert [row["value"] for row in table.scan()] == ["good"]
        with pytest.raises(WalError, match="broken"):
            table.insert({"value": "after-break"})


class TestTornTails:
    """Crash mid-append: torn records are discarded, never raised."""

    def _seed(self, tmp_path) -> WriteAheadLog:
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        for index in range(3):
            database.table("items").insert({"value": f"v{index}"})
        database.close()
        return wal

    def test_half_written_record_discarded(self, tmp_path):
        self._seed(tmp_path)
        path = tmp_path / "db.wal"
        segment = segment_files(path)[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw + b'00000000 {"lsn": 4, "txn": [')
        wal = WriteAheadLog(path, fsync="never", repair=False)
        assert len(wal.records()) == 3
        assert wal.torn_tail is not None
        assert segment.read_bytes() == raw + b'00000000 {"lsn": 4, "txn": ['

    def test_repair_truncates_in_place(self, tmp_path):
        self._seed(tmp_path)
        path = tmp_path / "db.wal"
        segment = segment_files(path)[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw + b"garbage-that-is-not-a-record\n")
        wal = WriteAheadLog(path, fsync="never")
        assert wal.repaired_bytes == len(b"garbage-that-is-not-a-record\n")
        assert segment.read_bytes() == raw
        assert len(wal) == 3

    def test_interior_corruption_refuses_auto_repair(self, tmp_path):
        """A damaged record with intact records *after* it is not a
        crash-torn tail: silently truncating would destroy durably-acked
        commits, so opening for write refuses; inspection still works."""
        self._seed(tmp_path)
        path = tmp_path / "db.wal"
        segment = segment_files(path)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        corrupted = bytearray(lines[1])
        corrupted[-5] ^= 0xFF
        damaged = lines[0] + bytes(corrupted) + lines[2]
        segment.write_bytes(damaged)
        with pytest.raises(WalError, match="refusing to auto-repair"):
            WriteAheadLog(path, fsync="never")
        assert segment.read_bytes() == damaged  # nothing destroyed
        records, torn = WriteAheadLog(path, fsync="never", repair=False).read_committed()
        assert [record.lsn for record in records] == [1]
        assert torn is not None

    def test_tear_in_nonfinal_segment_refuses_auto_repair(self, tmp_path):
        """Rotation fsyncs segment N before N+1 exists, so a tear in a
        non-final segment cannot be a crash artifact — it is interior
        corruption even though the tear sits at that segment's tail."""
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never", segment_bytes=1)
        database.attach_wal(wal)
        for index in range(3):
            database.table("items").insert({"value": f"v{index}"})
        database.close()
        first = segment_files(tmp_path / "db.wal")[0]
        first.write_bytes(first.read_bytes()[:-7])  # tear its tail
        with pytest.raises(WalError, match="refusing to auto-repair"):
            WriteAheadLog(tmp_path / "db.wal", fsync="never")
        records, torn = WriteAheadLog(
            tmp_path / "db.wal", fsync="never", repair=False
        ).read_committed()
        assert records == []  # prefix ends at the first segment's tear
        assert torn is not None

    def test_crc_mismatch_ends_committed_prefix(self, tmp_path):
        self._seed(tmp_path)
        path = tmp_path / "db.wal"
        segment = segment_files(path)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        # flip one byte inside the second record's payload
        corrupted = bytearray(lines[1])
        corrupted[-5] ^= 0xFF
        segment.write_bytes(lines[0] + bytes(corrupted) + lines[2])
        wal = WriteAheadLog(path, fsync="never", repair=False)
        records, torn = wal.read_committed()
        # everything from the first bad record on is untrusted,
        # including the structurally-valid record after it
        assert [record.lsn for record in records] == [1]
        assert "crc mismatch" in torn

    def test_non_monotonic_lsn_ends_committed_prefix(self, tmp_path):
        self._seed(tmp_path)
        path = tmp_path / "db.wal"
        segment = segment_files(path)[-1]
        lines = segment.read_bytes().splitlines(keepends=True)
        segment.write_bytes(lines[0] + lines[2] + lines[1])
        wal = WriteAheadLog(path, fsync="never", repair=False)
        records, torn = wal.read_committed()
        assert [record.lsn for record in records] == [1, 3]
        assert "non-monotonic" in torn

    def test_recovery_applies_only_committed_prefix(self, tmp_path):
        self._seed(tmp_path)
        path = tmp_path / "db.wal"
        segment = segment_files(path)[-1]
        raw = segment.read_bytes()
        segment.write_bytes(raw[: len(raw) - 7])  # crash mid-last-record
        recovered = make_database()
        applied = WriteAheadLog(path, fsync="never").replay_into(recovered)
        assert applied == 2
        values = sorted(row["value"] for row in recovered.table("items").scan())
        assert values == ["v0", "v1"]
        recovered.verify()

    def test_empty_file_is_fine(self, tmp_path):
        path = tmp_path / "db.wal"
        path.touch()
        wal = WriteAheadLog(path)
        assert wal.records() == []
        assert wal.torn_tail is None


class TestSegmentRotation:
    def test_appends_rotate_at_the_size_threshold(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never", segment_bytes=256)
        database.attach_wal(wal)
        for index in range(20):
            database.table("items").insert({"value": f"v{index:03d}"})
        stats = wal.stats()
        assert stats["rotations"] > 0
        assert stats["segments"] == stats["rotations"] + 1
        assert len(segment_files(tmp_path / "db.wal")) == stats["segments"]
        # every non-active segment respects the size floor that triggered
        # its rotation
        for segment in segment_files(tmp_path / "db.wal")[:-1]:
            assert segment.stat().st_size >= 256
        database.close()

        reopened = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        assert [record.lsn for record in reopened.records()] == list(range(1, 21))
        assert reopened.sequence == 20

    def test_reopen_continues_in_the_active_segment(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never", segment_bytes=256)
        database.attach_wal(wal)
        for index in range(10):
            database.table("items").insert({"value": f"v{index:03d}"})
        segments_before = len(segment_files(tmp_path / "db.wal"))
        database.close()

        database2 = make_database()
        wal2 = WriteAheadLog(tmp_path / "db.wal", fsync="never", segment_bytes=10**9)
        database2.attach_wal(wal2)
        database2.table("items").insert({"value": "resumed", "score": None})
        assert len(segment_files(tmp_path / "db.wal")) == segments_before
        assert wal2.records()[-1].lsn == 11

    def test_truncate_rotates_a_fully_covered_active_segment(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        for index in range(3):
            database.table("items").insert({"value": f"v{index}"})
        dropped = wal.truncate()
        assert dropped == 3
        assert wal.records() == []
        assert len(wal) == 0
        # the covered active segment was rotated away and unlinked; one
        # fresh active segment remains
        assert len(segment_files(tmp_path / "db.wal")) == 1
        assert wal.sequence == 3
        database.table("items").insert({"value": "later"})
        assert wal.records()[0].lsn == 4

    def test_legacy_single_file_log_migrates_to_a_segment_directory(self, tmp_path):
        path = tmp_path / "db.wal"
        database = make_database()
        wal = WriteAheadLog(path, fsync="never")
        database.attach_wal(wal)
        database.table("items").insert({"value": "old-layout"})
        database.close()
        # simulate the pre-segment layout: collapse the directory back
        # into a single regular file at the same path
        raw = b"".join(seg.read_bytes() for seg in segment_files(path))
        for seg in segment_files(path):
            seg.unlink()
        path.rmdir()
        path.write_bytes(raw)

        reopened = WriteAheadLog(path, fsync="never")
        assert path.is_dir()
        assert [seg.name for seg in segment_files(path)] == ["wal-000001.log"]
        records = reopened.records()
        assert len(records) == 1
        assert records[0].changes[0][3]["value"] == "old-layout"


class TestFsyncPolicies:
    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_policies_commit_durably(self, tmp_path, policy):
        wal = WriteAheadLog(tmp_path / "db.wal", fsync=policy)
        database = make_database()
        database.attach_wal(wal)
        for index in range(10):
            database.table("items").insert({"value": f"v{index}"})
        database.close()
        assert len(WriteAheadLog(tmp_path / "db.wal").records()) == 10

    def test_always_fsyncs_every_group(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="always")
        database = make_database()
        database.attach_wal(wal)
        for index in range(5):
            database.table("items").insert({"value": f"v{index}"})
        assert wal.sync_count >= 5  # single-threaded: one group per commit

    def test_never_does_not_fsync(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database = make_database()
        database.attach_wal(wal)
        for index in range(5):
            database.table("items").insert({"value": f"v{index}"})
        assert wal.sync_count == 0
        # no flusher daemon outside the interval policy
        assert not wal.stats()["flusher_running"]


class TestIntervalFlusher:
    def test_idle_dirty_log_is_synced_by_the_background_flusher(self, tmp_path):
        """Under the interval policy a lone commit may land between
        piggyback fsyncs; with no further commits arriving, only the
        background flusher bounds its durability staleness."""
        wal = WriteAheadLog(
            tmp_path / "db.wal", fsync="interval", fsync_interval=0.02
        )
        database = make_database()
        database.attach_wal(wal)
        database.table("items").insert({"value": "lone"})
        assert wal.stats()["flusher_running"]
        deadline = time.monotonic() + 5.0
        while wal.stats()["dirty"] and time.monotonic() < deadline:
            time.sleep(0.01)
        stats = wal.stats()
        assert not stats["dirty"]
        assert stats["sync_count"] >= 1
        assert wal.last_sync_age() < 5.0
        database.close()
        # close() stops and joins the daemon
        assert not wal.stats()["flusher_running"]


class TestTransactionFootprints:
    def test_commit_records_carry_the_table_set(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        with database.transaction():
            table.insert({"value": "a"})
            table.insert({"value": "b"})
        record = wal.records()[0]
        assert record.tables == ("items",)
        # the footprint survives the on-disk roundtrip
        wal.flush()
        assert WriteAheadLog(tmp_path / "db.wal").records()[0].tables == ("items",)

    def test_footprint_survives_truncate_through(self, tmp_path):
        database = make_database()
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        database.attach_wal(wal)
        table = database.table("items")
        for index in range(3):
            with database.transaction():
                table.insert({"value": f"v{index}"})
        wal.truncate_through(3)
        database.table("items").insert({"value": "late"})
        remaining = wal.records()
        assert [record.lsn for record in remaining] == [4]
        assert all(record.tables == ("items",) for record in remaining)

    def test_footprint_less_records_still_decode(self, tmp_path):
        """Logs written before the ``tables`` field existed decode with
        an empty footprint (and replay without footprint validation)."""
        import json
        import zlib

        payload = {"lsn": 1, "txn": [["insert", "items", 1, {"id": 1, "value": "x", "score": None}]]}
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        crc = zlib.crc32(body) & 0xFFFFFFFF
        (tmp_path / "db.wal").write_bytes(b"%08x " % crc + body + b"\n")
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        records = wal.records()
        assert len(records) == 1
        assert records[0].tables == ()
        recovered = make_database()
        assert wal.replay_into(recovered) == 1
        assert recovered.table("items").get(1)["value"] == "x"

    def test_replay_rejects_changes_outside_declared_footprint(self, tmp_path):
        """A record whose change list touches a table missing from its
        declared footprint is corrupt — replay must refuse it."""
        import json
        import zlib

        payload = {
            "lsn": 1,
            "tables": ["other"],
            "txn": [["insert", "items", 1, {"id": 1, "value": "x", "score": None}]],
        }
        body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        crc = zlib.crc32(body) & 0xFFFFFFFF
        (tmp_path / "db.wal").write_bytes(b"%08x " % crc + body + b"\n")
        wal = WriteAheadLog(tmp_path / "db.wal", fsync="never")
        recovered = make_database()
        with pytest.raises(WalError, match="footprint"):
            wal.replay_into(recovered)
