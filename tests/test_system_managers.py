"""Unit tests: user/resource/tag managers, projects, notifications."""

import pytest

from repro.errors import ApprovalError, ProjectError, ResourceNotFoundError
from repro.system import (
    NotificationCenter,
    ProjectRegistry,
    ResourceManager,
    TagManager,
    UserManager,
    build_system_database,
)
from repro.tagging import Corpus, Post, TaggedResource, Vocabulary


@pytest.fixture()
def database():
    return build_system_database()


@pytest.fixture()
def loaded(database):
    vocabulary = Vocabulary(["python", "db", "web", "noise"])
    corpus = Corpus(vocabulary)
    resource = TaggedResource(1, "url-1")
    resource.add_post(Post.from_tags(1, 50, [0, 1]))
    resource.add_post(Post.from_tags(1, 51, [0]))
    corpus.add_resource(resource)
    corpus.add_resource(TaggedResource(2, "url-2"))
    manager = ResourceManager(database)
    manager.upload(77, corpus)
    return database, corpus, manager


class TestUserManager:
    def test_register_roles(self, database):
        users = UserManager(database)
        provider = users.register("alice", "provider")
        tagger = users.register("bob", "tagger")
        assert users.get(provider)["role"] == "provider"
        assert [row["name"] for row in users.by_role("tagger")] == ["bob"]

    def test_bad_role_rejected(self, database):
        with pytest.raises(ApprovalError, match="role"):
            UserManager(database).register("x", "admin")

    def test_duplicate_name_rejected(self, database):
        users = UserManager(database)
        users.register("alice", "provider")
        from repro.store import DuplicateKeyError

        with pytest.raises(DuplicateKeyError):
            users.register("alice", "tagger")

    def test_ensure_tagger_idempotent(self, database):
        users = UserManager(database)
        assert users.ensure_tagger(10_001) == 10_001
        assert users.ensure_tagger(10_001) == 10_001
        assert users.get(10_001)["role"] == "tagger"

    def test_approval_rate_updates(self, database):
        users = UserManager(database)
        worker = users.ensure_tagger(500)
        users.record_decision(worker, approved=True)
        users.record_decision(worker, approved=True)
        users.record_decision(worker, approved=False)
        assert users.approval_rate(worker) == pytest.approx(2 / 3)


class TestResourceManager:
    def test_upload_persists_rows_and_posts(self, loaded):
        database, corpus, manager = loaded
        rows = manager.of_project(77)
        assert [row["id"] for row in rows] == [1, 2]
        assert rows[0]["n_posts"] == 2
        assert len(manager.posts_of(1)) == 2

    def test_record_post_appends(self, loaded):
        _database, corpus, manager = loaded
        resource = corpus.resource(1)
        resource.add_post(Post.from_tags(1, 52, [2]))
        manager.record_post(resource, quality=0.7)
        row = manager.get(1)
        assert row["n_posts"] == 3
        assert row["quality"] == 0.7
        assert len(manager.posts_of(1)) == 3

    def test_promote_stop_flags(self, loaded):
        _database, _corpus, manager = loaded
        manager.set_promoted(1, True)
        manager.set_stopped(2, True)
        assert manager.get(1)["promoted"] is True
        assert manager.get(2)["stopped"] is True

    def test_missing_resource(self, loaded):
        _database, _corpus, manager = loaded
        with pytest.raises(ResourceNotFoundError):
            manager.get(99)

    def test_posts_with_taggers_joins_user_rows(self, loaded):
        database, _corpus, manager = loaded
        users = UserManager(database)
        users.ensure_tagger(50, name="carol")
        joined = manager.posts_with_taggers(1)
        assert [row["seq"] for row in joined] == [1, 2]
        assert joined[0]["tagger_id"] == 50
        assert joined[0]["user_name"] == "carol"
        # tagger 51 never registered: left join pads, post still shows
        assert joined[1]["user_name"] is None


class TestTagManager:
    def test_frequencies_sorted(self, loaded):
        database, corpus, _manager = loaded
        tags = TagManager(database, corpus.vocabulary)
        assert tags.tag_frequencies(1) == [("python", 2), ("db", 1)]
        assert tags.top_tags(1, 1) == [("python", 2)]

    def test_empty_resource(self, loaded):
        database, corpus, _manager = loaded
        tags = TagManager(database, corpus.vocabulary)
        assert tags.tag_frequencies(2) == []

    def test_corpus_view_matches_store_view(self, loaded):
        database, corpus, _manager = loaded
        tags = TagManager(database, corpus.vocabulary)
        assert tags.resource_tags_from_corpus(corpus, 1, 5) == tags.top_tags(1, 5)

    def test_rename_view(self, loaded):
        database, corpus, _manager = loaded
        tags = TagManager(database, corpus.vocabulary)
        assert tags.rename_view([0, 2]) == ["python", "web"]

    def test_contributors_join_counts_posts_per_tagger(self, loaded):
        database, corpus, _manager = loaded
        UserManager(database).ensure_tagger(50, name="carol")
        tags = TagManager(database, corpus.vocabulary)
        assert tags.contributors(1) == [("carol", 1), ("worker-51", 1)]
        assert tags.contributors(2) == []


class TestProjectRegistry:
    def test_lifecycle_happy_path(self, database):
        projects = ProjectRegistry(database)
        pid = projects.create(1, "p", budget=10)
        assert projects.get(pid)["state"] == "draft"
        projects.transition(pid, "running")
        projects.transition(pid, "paused")
        projects.transition(pid, "running")
        projects.transition(pid, "completed")

    def test_illegal_transitions(self, database):
        projects = ProjectRegistry(database)
        pid = projects.create(1, "p", budget=10)
        with pytest.raises(ProjectError, match="illegal transition"):
            projects.transition(pid, "completed")
        projects.transition(pid, "running")
        with pytest.raises(ProjectError):
            projects.transition(pid, "draft")

    def test_unknown_state(self, database):
        projects = ProjectRegistry(database)
        pid = projects.create(1, "p", budget=10)
        with pytest.raises(ProjectError, match="unknown project state"):
            projects.transition(pid, "archived")

    def test_budget_spend_guard(self, database):
        projects = ProjectRegistry(database)
        pid = projects.create(1, "p", budget=1)
        projects.transition(pid, "running")
        projects.record_spend(pid, avg_quality=0.5)
        with pytest.raises(ProjectError, match="exceeds budget"):
            projects.record_spend(pid, avg_quality=0.5)

    def test_add_budget_rules(self, database):
        projects = ProjectRegistry(database)
        pid = projects.create(1, "p", budget=5)
        projects.add_budget(pid, 5)
        assert projects.budget_remaining(pid) == 10
        projects.transition(pid, "running")
        projects.transition(pid, "stopped")
        with pytest.raises(ProjectError, match="cannot add budget"):
            projects.add_budget(pid, 1)

    def test_quality_sort(self, database):
        projects = ProjectRegistry(database)
        low = projects.create(1, "low", budget=1)
        high = projects.create(1, "high", budget=1)
        projects.update_quality(low, 0.2)
        projects.update_quality(high, 0.9)
        ordered = [row["name"] for row in projects.list_by_quality()]
        assert ordered == ["high", "low"]

    def test_in_state_with_provider_joins_user_row(self, database):
        users = UserManager(database)
        alice = users.register("alice", "provider")
        bob = users.register("bob", "provider")
        projects = ProjectRegistry(database)
        first = projects.create(alice, "p1", budget=1)
        second = projects.create(bob, "p2", budget=1)
        projects.create(alice, "draft-only", budget=1)
        projects.transition(first, "running")
        projects.transition(second, "running")
        joined = projects.in_state_with_provider("running")
        assert [(row["id"], row["user_name"]) for row in joined] == [
            (first, "alice"), (second, "bob"),
        ]

    def test_validation(self, database):
        projects = ProjectRegistry(database)
        with pytest.raises(ProjectError):
            projects.create(1, "p", budget=-1)
        with pytest.raises(ProjectError):
            projects.create(1, "p", pay_per_task=-0.1)


class TestNotifications:
    def test_feed_and_read_flow(self, database):
        center = NotificationCenter(database)
        center.notify(1, "post_approved", "m1", ts=1.0)
        center.notify(1, "quality_up", "m2", ts=2.0)
        center.notify(2, "post_approved", "other", ts=3.0)
        feed = center.feed(1)
        assert [row["message"] for row in feed] == ["m2", "m1"]
        assert center.unread_count(1) == 2
        center.mark_read(feed[0]["id"])
        assert center.unread_count(1) == 1
        assert center.mark_all_read(1) == 1
        assert center.unread_count(1) == 0

    def test_unread_only_filter(self, database):
        center = NotificationCenter(database)
        identifier = center.notify(1, "post_rejected", "m", ts=0.0)
        center.mark_read(identifier)
        assert center.feed(1, unread_only=True) == []

    def test_unknown_kind_rejected(self, database):
        center = NotificationCenter(database)
        with pytest.raises(ValueError, match="unknown notification kind"):
            center.notify(1, "smoke_signal", "m")
