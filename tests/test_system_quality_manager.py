"""Unit tests: the Quality Manager's campaign mechanics and failure paths."""

import numpy as np
import pytest

from repro.crowd import CrowdWorker, CrowdPlatform, PaymentLedger
from repro.datasets import make_delicious_like
from repro.errors import BudgetError, PlatformError, ProjectError
from repro.quality import QualityBoard
from repro.strategies import FewestPostsFirst
from repro.system import ProjectRuntime, QualityManager
from repro.taggers import preset


@pytest.fixture()
def rig():
    data = make_delicious_like(
        n_resources=8, initial_posts_total=50, master_seed=23, population_size=10
    )
    corpus = data.split.provider_corpus
    workers = [
        CrowdWorker(worker_id=100 + index, profile=preset("casual"))
        for index in range(5)
    ]
    platform = CrowdPlatform(
        workers, data.dataset.noise_model, np.random.default_rng(0)
    )
    ledger = PaymentLedger()
    ledger.deposit(1, 100.0)
    manager = QualityManager(ledger)
    runtime = ProjectRuntime(
        project_id=7,
        provider_id=1,
        corpus=corpus,
        board=QualityBoard(corpus),
        strategy=FewestPostsFirst(),
        platform=platform,
        pay_per_task=0.05,
    )
    manager.attach(runtime)
    return data, manager, runtime, ledger


class TestRunOneTask:
    def test_outcome_fields(self, rig):
        _data, manager, runtime, _ledger = rig
        outcome = manager.run_one_task(7, budget_total=10, budget_spent=0)
        assert outcome.resource_id in runtime.allocation
        assert runtime.allocation[outcome.resource_id] == 1
        assert len(runtime.trajectory) == 1

    def test_budget_guard(self, rig):
        _data, manager, _runtime, _ledger = rig
        with pytest.raises(BudgetError, match="exhausted"):
            manager.run_one_task(7, budget_total=5, budget_spent=5)

    def test_approved_task_pays_worker(self, rig):
        _data, manager, runtime, ledger = rig
        outcome = manager.run_one_task(7, budget_total=10, budget_spent=0)
        if outcome.approved:
            assert ledger.earned_by(outcome.worker_id) == pytest.approx(0.05)
        ledger.verify_conservation()

    def test_all_resources_stopped(self, rig):
        _data, manager, runtime, _ledger = rig
        for resource_id in list(runtime.eligible):
            manager.stop_resource(7, resource_id)
        with pytest.raises(ProjectError, match="all resources stopped"):
            manager.run_one_task(7, budget_total=10, budget_spent=0)

    def test_promoted_resource_chosen_first(self, rig):
        _data, manager, runtime, _ledger = rig
        target = max(
            runtime.corpus.resource_ids(),
            key=lambda rid: runtime.corpus.resource(rid).n_posts,
        )
        manager.promote(7, target)
        outcome = manager.run_one_task(7, budget_total=10, budget_spent=0)
        assert outcome.resource_id == target

    def test_rejected_task_does_not_touch_corpus(self, rig):
        from repro.crowd import ApprovalPolicy

        class RejectAll(ApprovalPolicy):
            def should_approve(self, resource, post):
                return False

        _data, manager, runtime, ledger = rig
        runtime.approval_policy = RejectAll()
        posts_before = runtime.corpus.total_posts()
        outcome = manager.run_one_task(7, budget_total=10, budget_spent=0)
        assert not outcome.approved
        assert runtime.corpus.total_posts() == posts_before
        assert sum(ledger.worker_balance.values()) == 0.0


class TestRuntimeRegistry:
    def test_attach_twice_rejected(self, rig):
        _data, manager, runtime, _ledger = rig
        with pytest.raises(ProjectError, match="already has a runtime"):
            manager.attach(runtime)

    def test_detach_then_access_rejected(self, rig):
        _data, manager, _runtime, _ledger = rig
        manager.detach(7)
        assert not manager.is_attached(7)
        with pytest.raises(ProjectError, match="not running"):
            manager.runtime(7)
        with pytest.raises(ProjectError):
            manager.detach(7)

    def test_controls_unknown_resource(self, rig):
        _data, manager, _runtime, _ledger = rig
        with pytest.raises(ProjectError):
            manager.promote(7, 9999)
        with pytest.raises(ProjectError):
            manager.stop_resource(7, 9999)
        with pytest.raises(ProjectError):
            manager.resume_resource(7, 9999)


class TestProjectedGain:
    def test_needs_history(self, rig):
        _data, manager, _runtime, _ledger = rig
        assert manager.projected_gain(7, 100) == 0.0

    def test_positive_slope_projects_positive_gain(self, rig):
        _data, manager, _runtime, _ledger = rig
        for spent in range(12):
            manager.run_one_task(7, budget_total=50, budget_spent=spent)
        gain = manager.projected_gain(7, 100)
        assert gain >= 0.0

    def test_zero_extra_tasks(self, rig):
        _data, manager, _runtime, _ledger = rig
        assert manager.projected_gain(7, 0) == 0.0


class TestEscrowExhaustion:
    def test_underfunded_escrow_raises_ledger_error(self, rig):
        from repro.errors import LedgerError

        _data, manager, runtime, ledger = rig
        ledger.refund(1)  # drain the provider's escrow
        ledger.deposit(1, 0.01)  # not enough for even one paid task
        with pytest.raises(LedgerError, match="cannot"):
            for spent in range(5):
                manager.run_one_task(7, budget_total=50, budget_spent=spent)
