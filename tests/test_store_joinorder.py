"""Tests for multi-way join ordering (the join-graph planner).

Layers:

- targeted assertions: the DP order search reorders a badly-written
  3-way join (non-left-deep tree, selective relation first), sort-merge
  join selection and semantics, predicate pushdown, the written-order
  fallback for colliding column names, join plan-cache behaviour, and
  MCV-backed string-equality selectivity;
- a hypothesis property: every planned 3-way join — chained inner and
  left-outer joins, with NULL keys, random index layouts, pushdown
  filters and limit/offset — is byte-identical to brute-force nested
  loops (with ordered roots compared positionally, including the
  window).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    Between,
    Column,
    Database,
    DataType,
    Eq,
    MostCommonValues,
    Ne,
    Query,
    Schema,
)
from repro.store.plan import order_key

# ----------------------------------------------------------------------
# fixtures / helpers
# ----------------------------------------------------------------------


def _triple(a_rows, b_rows, c_rows, *, b_layout="none", c_layout="none"):
    """Three joinable tables: a.key -> b.akey, b.ckey -> c.key."""
    database = Database("joinorder")
    a = database.create_table(
        "ta",
        Schema(
            [
                Column("id", DataType.INT),
                Column("key", DataType.INT, nullable=True),
                Column("kind", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    b = database.create_table(
        "tb",
        Schema(
            [
                Column("id", DataType.INT),
                Column("akey", DataType.INT, nullable=True),
                Column("ckey", DataType.INT, nullable=True),
                Column("tag", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    c = database.create_table(
        "tc",
        Schema(
            [
                Column("id", DataType.INT),
                Column("key", DataType.INT, nullable=True),
                Column("label", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    if b_layout in ("hash", "sorted"):
        b.create_index("akey", kind=b_layout)
    if c_layout in ("hash", "sorted"):
        c.create_index("key", kind=c_layout)
    for key, kind in a_rows:
        a.insert({"key": key, "kind": kind})
    for akey, ckey, tag in b_rows:
        b.insert({"akey": akey, "ckey": ckey, "tag": tag})
    for key, label in c_rows:
        c.insert({"key": key, "label": label})
    return a, b, c


def _brute_binary(left_rows, right_rows, *, left_key, right_key, how,
                  prefix_right, right_columns):
    """One nested-loop join step over combined dict rows."""
    out = []
    for left in left_rows:
        matches = [
            right
            for right in right_rows
            if left[left_key] is not None
            and right[right_key] is not None
            and left[left_key] == right[right_key]
        ]
        if matches:
            for right in matches:
                combined = dict(left)
                combined.update(
                    {f"{prefix_right}{k}": v for k, v in right.items()}
                )
                out.append(combined)
        elif how == "left":
            combined = dict(left)
            combined.update({f"{prefix_right}{k}": None for k in right_columns})
            out.append(combined)
    return out


def _canonical(rows):
    return sorted(
        rows,
        key=lambda row: tuple(
            order_key(row.get(name)) for name in ("id", "b_id", "c_id")
        ),
    )


# ----------------------------------------------------------------------
# order search
# ----------------------------------------------------------------------


def _skewed_triple():
    """a is large and unindexed on the join key; c is tiny and
    selective — written order is the worst order."""
    a, b, c = _triple(
        [(i % 40, "x") for i in range(400)],
        [(i % 40, i % 30, "t") for i in range(300)],
        [(i, "rare" if i < 2 else "common") for i in range(30)],
        b_layout="none",
        c_layout="none",
    )
    b.create_index("ckey", kind="hash")
    c.create_index("label", kind="hash")
    return a, b, c


class TestOrderSearch:
    def test_search_reorders_a_badly_written_three_way(self):
        a, b, c = _skewed_triple()
        join = (
            Query(a)
            .join(b, on=("key", "akey"), prefix_right="b_")
            .join(c, on=("b_ckey", "key"), prefix_right="c_")
            .where(Eq("c_label", "rare"))
        )
        plan = join.explain()
        # the selective categories relation is joined before the big
        # unindexed one: order differs from the written ta -> tb -> tc
        assert "[join-order: ta -> tc -> tb (dp)]" in plan
        lines = plan.splitlines()
        assert lines[0].startswith("hash-join")
        # non-left-deep: the build side (second child) is a join subtree
        assert lines[1].lstrip().startswith("full-scan")
        assert any(line.startswith("  index-nl-join") for line in lines)

    def test_search_and_written_orders_agree_on_rows(self):
        a, b, c = _skewed_triple()

        def build():
            return (
                Query(a)
                .join(b, on=("key", "akey"), prefix_right="b_")
                .join(c, on=("b_ckey", "key"), prefix_right="c_")
                .where(Eq("c_label", "rare"))
            )

        searched = build()
        written = build()
        written.order_search = False
        assert "(written)" in written.explain()
        assert _canonical(searched.all()) == _canonical(written.all())
        assert searched.count() == written.count() > 0

    def test_collisions_pin_the_written_order(self):
        # no prefixes: every table exposes "id", so reordering would
        # change which relation wins the collision
        a, b, c = _triple(
            [(1, "x")], [(1, 2, "t")], [(2, "l")], b_layout="hash", c_layout="hash"
        )
        join = Query(a).join(b, on=("key", "akey")).join(c, on=("ckey", "key"))
        assert "(written)" in join.explain()
        rows = join.all()
        assert len(rows) == 1
        assert rows[0]["label"] == "l"

    def test_ordered_root_is_preserved_through_chained_joins(self):
        a, b, c = _triple(
            [(3, "x"), (1, "x"), (2, "x")],
            [(1, 1, "t"), (2, 1, "t"), (3, 1, "t")],
            [(1, "l")],
            b_layout="hash",
            c_layout="hash",
        )
        join = (
            Query(a)
            .order_by("key", descending=True)
            .join(b, on=("key", "akey"), prefix_right="b_")
            .join(c, on=("b_ckey", "key"), prefix_right="c_")
        )
        assert [row["key"] for row in join.all()] == [3, 2, 1]

    def test_greedy_kicks_in_above_the_dp_cutoff(self):
        database = Database("wide")
        tables = []
        for position in range(8):
            t = database.create_table(
                f"t{position}",
                Schema(
                    [Column("id", DataType.INT), Column("k", DataType.INT)],
                    primary_key="id",
                ),
            )
            for value in range(4):
                t.insert({"k": value})
            tables.append(t)
        join = Query(tables[0]).join(tables[1], on=("k", "k"), prefix_right="p1_")
        for position in range(2, 8):
            join = join.join(
                tables[position], on=("k", "k"), prefix_right=f"p{position}_"
            )
        plan = join.explain()
        assert "(greedy)" in plan
        # one row per key value per table: each key group joins 1x1x...
        assert join.count() == 4

    def test_four_way_search_agrees_with_written_order(self):
        database = Database("four")
        specs = {
            "w": [("k1", 30)],
            "x": [("k1", 12), ("k2", 18)],
            "y": [("k2", 18), ("k3", 10)],
            "z": [("k3", 25)],
        }
        tables = {}
        for name, columns in specs.items():
            schema_columns = [Column("id", DataType.INT)] + [
                Column(column, DataType.INT) for column, _rows in columns
            ]
            table = database.create_table(
                name, Schema(schema_columns, primary_key="id")
            )
            rows, modulo = (
                (30, 6) if name in ("w", "z") else (18, 6)
            )
            for index in range(rows):
                table.insert(
                    {column: (index + offset) % modulo
                     for offset, (column, _r) in enumerate(columns)}
                )
            tables[name] = table
        tables["x"].create_index("k1", kind="hash")
        tables["y"].create_index("k2", kind="hash")

        def build(search):
            join = (
                Query(tables["w"])
                .join(tables["x"], on=("k1", "k1"), prefix_right="x_")
                .join(tables["y"], on=("x_k2", "k2"), prefix_right="y_")
                .join(tables["z"], on=("y_k3", "k3"), prefix_right="z_")
            )
            join.order_search = search
            return join

        searched = build(True)
        written = build(False)
        assert "(dp)" in searched.explain()
        assert searched.count() == written.count() > 0

    def test_bushy_partition_plans_execute_correctly(self):
        from repro.store import plan_join_graph
        from repro.store.joinorder import (
            _bushy_candidate, _Candidate, _access_cost, JoinGraph,
        )
        from repro.store import JoinEdge, Relation

        database = Database("bushy")
        tables = []
        for position, name in enumerate(("p", "q", "r", "s")):
            table = database.create_table(
                name,
                Schema(
                    [Column("id", DataType.INT), Column("k", DataType.INT)],
                    primary_key="id",
                ),
            )
            for index in range(6):
                table.insert({"k": index % 3})
            tables.append(table)
        relations = [
            Relation(position, table, None, f"{table.name}_" if position else "")
            for position, table in enumerate(tables)
        ]
        edges = [
            JoinEdge(0, "k", 1, "k"),
            JoinEdge(1, "k", 2, "k"),
            JoinEdge(2, "k", 3, "k"),
        ]
        graph = JoinGraph(relations, edges)

        def candidate(positions, plan_builder):
            plan = plan_builder()
            return _Candidate(
                _access_cost(plan), max(plan.estimate(), 0.0), plan,
                positions, len(positions) > 1,
            )

        # assemble (p ⋈ q) and (r ⋈ s) via the public planner, then
        # force the bushy combine across the q-r edge
        left_pair, _ = plan_join_graph(
            JoinGraph(relations[:2], edges[:1]),
            lambda rel: Query(rel.table)._build_plan(None),
        )
        right_pair, _ = plan_join_graph(
            JoinGraph(
                # positions renumbered: a JoinGraph indexes relations
                # by position, so a sub-graph starts at 0
                [Relation(0, tables[2], None, "r_"),
                 Relation(1, tables[3], None, "s_")],
                [JoinEdge(0, "k", 1, "k")],
            ),
            lambda rel: Query(rel.table)._build_plan(None),
        )
        bushy = _bushy_candidate(
            graph,
            _Candidate(1.0, 12.0, left_pair, (0, 1), True),
            _Candidate(1.0, 12.0, right_pair, (2, 3), True),
            edges[1],
        )
        rows = list(bushy.plan.iter_rows())
        # each k group: 2 rows per table -> 2^4 combinations, 3 groups
        assert len(rows) == 3 * 16
        assert all(
            row["k"] == row["q_k"] == row["r_k"] == row["s_k"] for row in rows
        )
        a, b, c = _triple([], [], [], b_layout="hash")
        join = Query(a).join(b, on=("key", "akey"), prefix_right="b_")
        with pytest.raises(Exception):
            join.join(c, on=("nope", "key"), prefix_right="c_")

    def test_disconnected_inputs_are_impossible_by_construction(self):
        # every chained join must name an existing output column, so a
        # cross product can never be expressed
        a, b, c = _triple([], [], [])
        with pytest.raises(Exception):
            Query(a).join(b, on=("missing", "akey"))


# ----------------------------------------------------------------------
# sort-merge join
# ----------------------------------------------------------------------


def _sorted_pair(left_rows, right_rows):
    database = Database("smj")
    left = database.create_table(
        "lhs",
        Schema(
            [
                Column("id", DataType.INT),
                Column("score", DataType.FLOAT, nullable=True),
                Column("kind", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    right = database.create_table(
        "rhs",
        Schema(
            [
                Column("id", DataType.INT),
                Column("score", DataType.FLOAT, nullable=True),
                Column("tag", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    left.create_index("score", kind="sorted")
    right.create_index("score", kind="sorted")
    for score, kind in left_rows:
        left.insert({"score": score, "kind": kind})
    for score, tag in right_rows:
        right.insert({"score": score, "tag": tag})
    return left, right


class TestSortMergeJoin:
    def test_sorted_sorted_equality_join_uses_sort_merge(self):
        left, right = _sorted_pair(
            [(i % 10 / 10, "x") for i in range(60)],
            [(i % 10 / 10, "y") for i in range(60)],
        )
        join = Query(left).join(right, on="score", prefix_left="l_", prefix_right="r_")
        assert "sort-merge-join" in join.explain()
        assert join.count() == 60 * 6  # 10 groups of 6x6

    def test_pushed_range_predicate_becomes_merge_bounds(self):
        left, right = _sorted_pair(
            [(i % 10 / 10, "x") for i in range(60)],
            [(i % 10 / 10, "y") for i in range(60)],
        )
        join = (
            Query(left)
            .where(Between("score", 0.2, 0.4))
            .join(right, on="score", prefix_left="l_", prefix_right="r_")
        )
        plan = join.explain()
        assert "sort-merge-join" in plan
        assert "0.2 <= v" in plan  # the bound reached the index range
        assert join.count() == 3 * 6 * 6

    def test_duplicates_on_both_sides_cross_product_per_key(self):
        left, right = _sorted_pair([(0.5, "a"), (0.5, "b")], [(0.5, "x")] * 3)
        join = Query(left).join(right, on="score", prefix_left="l_", prefix_right="r_")
        if "sort-merge-join" not in join.explain():
            pytest.skip("tiny inputs may cost below the sort-merge crossover")
        assert join.count() == 6

    def test_null_scores_never_match_and_pad_under_left_join(self):
        left, right = _sorted_pair(
            [(None, "a")] + [(0.1 * (i % 5), "k") for i in range(40)],
            [(None, "x")] + [(0.1 * (i % 5), "t") for i in range(40)],
        )
        join = Query(left).join(
            right, on="score", prefix_left="l_", prefix_right="r_", how="left"
        )
        rows = join.all()
        padded = [row for row in rows if row["r_id"] is None]
        assert len(padded) == 1  # only the NULL-keyed left row
        assert padded[0]["l_kind"] == "a"
        # NULL right keys joined nothing
        assert all(row["r_score"] is not None for row in rows if row["r_id"] is not None)

    def test_interesting_order_skips_sort_and_notes_explain(self):
        left, right = _sorted_pair(
            [(i % 10 / 10, "x") for i in range(60)],
            [(i % 10 / 10, "y") for i in range(60)],
        )
        join = (
            Query(left)
            .order_by("score")
            .join(right, on="score", prefix_left="l_", prefix_right="r_")
        )
        plan = join.explain()
        assert "sort-merge-join" in plan
        assert "[interesting-order:" in plan
        assert "sort(" not in plan  # the merge output is already ordered
        scores = [row["l_score"] for row in join.all()]
        assert scores == sorted(scores)

    def test_interesting_order_note_survives_plan_cache_hits(self):
        left, right = _sorted_pair(
            [(i % 10 / 10, "x") for i in range(60)],
            [(i % 10 / 10, "y") for i in range(60)],
        )

        def build():
            return (
                Query(left)
                .order_by("score")
                .join(right, on="score", prefix_left="l_", prefix_right="r_")
            )

        first = build().explain()
        assert "[interesting-order:" in first
        assert "[plan-cache: miss]" in first
        second = build().explain()
        assert "[interesting-order:" in second
        assert "[plan-cache: hit]" in second

    def test_descending_order_gets_no_interesting_order_note(self):
        left, right = _sorted_pair(
            [(i % 10 / 10, "x") for i in range(60)],
            [(i % 10 / 10, "y") for i in range(60)],
        )
        join = (
            Query(left)
            .order_by("score", descending=True)
            .join(right, on="score", prefix_left="l_", prefix_right="r_")
        )
        plan = join.explain()
        assert "[interesting-order:" not in plan
        scores = [row["l_score"] for row in join.all()]
        assert scores == sorted(scores, reverse=True)

    def test_merge_matches_brute_force_exactly(self):
        left, right = _sorted_pair(
            [(i % 7 / 10, "x") for i in range(25)],
            [(i % 4 / 10, "y") for i in range(31)],
        )
        join = Query(left).join(right, on="score", prefix_left="l_", prefix_right="r_")
        expected = 0
        for lrow in left.scan():
            expected += sum(
                1 for rrow in right.scan() if rrow["score"] == lrow["score"]
            )
        assert join.count() == expected


# ----------------------------------------------------------------------
# predicate pushdown
# ----------------------------------------------------------------------


class TestPushdown:
    def test_single_relation_conjuncts_reach_the_relation_plan(self):
        a, b, c = _skewed_triple()
        join = (
            Query(a)
            .join(b, on=("key", "akey"), prefix_right="b_")
            .join(c, on=("b_ckey", "key"), prefix_right="c_")
            .where(Eq("c_label", "rare"))
        )
        plan = join.explain()
        # the filter ran as an index probe inside the c relation, not
        # as a residual filter over combined rows
        assert "hash-index(tc.label='rare'" in plan
        assert "filter(Eq(column='c_label'" not in plan

    def test_right_query_predicates_added_after_join_still_count(self):
        # builder-style mutation: both input queries are read at plan
        # time, matching the root side's behaviour
        a, b, _ = _triple(
            [(1, "x")] * 3, [(1, 1, "t"), (1, 1, "u")], [], b_layout="hash"
        )
        right = Query(b)
        join = Query(a).join(right, on=("key", "akey"), prefix_right="b_")
        right.where(Eq("tag", "t"))
        assert join.count() == 3  # only the tag='t' b row joins

    def test_cross_relation_conjuncts_stay_residual(self):
        a, b, c = _triple(
            [(1, "x")], [(1, 1, "x")], [(1, "x")], b_layout="hash", c_layout="hash"
        )
        join = (
            Query(a)
            .join(b, on=("key", "akey"), prefix_right="b_")
            .join(c, on=("b_ckey", "key"), prefix_right="c_")
            .where(Eq("kind", "x") | Eq("b_tag", "x"))
        )
        assert "filter(" in join.explain()
        assert join.count() == 1

    def test_outer_relation_predicates_keep_where_semantics(self):
        # WHERE on the null-supplying side must see the padded NULLs:
        # pushing Ne below the outer join would drop the only b row and
        # pad *both* a rows (count 2); as a residual it keeps exactly
        # the padded row (this store's Ne matches NULL, plain !=)
        a, b, _ = _triple(
            [(1, "x"), (2, "x")], [(1, 1, "t")], [], b_layout="hash"
        )
        join = (
            Query(a)
            .join(b, on=("key", "akey"), prefix_right="b_", how="left")
            .where(Ne("b_tag", "t"))
        )
        rows = join.all()
        assert len(rows) == 1
        assert rows[0]["key"] == 2 and rows[0]["b_tag"] is None


# ----------------------------------------------------------------------
# join plan cache
# ----------------------------------------------------------------------


class TestJoinPlanCache:
    def _join(self, a, b, c, label):
        return (
            Query(a)
            .join(b, on=("key", "akey"), prefix_right="b_")
            .join(c, on=("b_ckey", "key"), prefix_right="c_")
            .where(Eq("c_label", label))
        )

    def test_repeated_shapes_hit_and_rebind_values(self):
        a, b, c = _skewed_triple()
        assert "[plan-cache: miss]" in self._join(a, b, c, "rare").explain()
        hit = self._join(a, b, c, "common")
        assert "[plan-cache: hit]" in hit.explain()
        # the rebound plan still answers for the *new* value
        expected = self._join(a, b, c, "common")
        expected.order_search = False
        assert hit.count() == expected.count() > 0

    def test_hits_preserve_the_order_info(self):
        a, b, c = _skewed_triple()
        self._join(a, b, c, "rare").count()
        assert "[join-order: ta -> tc -> tb" in self._join(a, b, c, "rare").explain()

    def test_ddl_on_any_participant_invalidates(self):
        a, b, c = _skewed_triple()
        self._join(a, b, c, "rare").count()
        assert "[plan-cache: hit]" in self._join(a, b, c, "rare").explain()
        b.create_index("akey", kind="hash")  # not the cached root table
        assert "[plan-cache: miss]" in self._join(a, b, c, "rare").explain()

    def test_row_drift_on_any_participant_invalidates(self):
        a, b, c = _skewed_triple()
        self._join(a, b, c, "rare").count()
        for i in range(200):  # triple tc's row count
            c.insert({"key": i % 30, "label": "common"})
        assert "[plan-cache: miss]" in self._join(a, b, c, "rare").explain()

    def test_written_order_bypasses_the_cache(self):
        a, b, c = _skewed_triple()
        join = self._join(a, b, c, "rare")
        join.order_search = False
        assert "[plan-cache: bypass]" in join.explain()

    def test_sort_merge_plans_rebind_new_bounds(self):
        left, right = _sorted_pair(
            [(i % 10 / 10, "x") for i in range(60)],
            [(i % 10 / 10, "y") for i in range(60)],
        )

        def bounded(low, high):
            return (
                Query(left)
                .where(Between("score", low, high))
                .join(right, on="score", prefix_left="l_", prefix_right="r_")
            )

        first = bounded(0.2, 0.4)
        assert "sort-merge-join" in first.explain()
        assert first.count() == 3 * 36
        rebound = bounded(0.0, 0.1)
        assert "[plan-cache: hit]" in rebound.explain()
        # the cached merge re-ran with the *new* bounds
        assert rebound.count() == 2 * 36

    def test_view_joins_bypass_the_cache(self):
        a, b, c = _skewed_triple()
        database_view_a = a.read_view()
        join = (
            Query(database_view_a)
            .join(b, on=("key", "akey"), prefix_right="b_")
        )
        assert "[plan-cache: bypass]" in join.explain()


# ----------------------------------------------------------------------
# most-common-value statistics
# ----------------------------------------------------------------------


class TestMostCommonValues:
    def _table(self):
        database = Database("mcv")
        table = database.create_table(
            "t",
            Schema(
                [
                    Column("id", DataType.INT),
                    Column("kind", DataType.TEXT),
                    Column("n", DataType.INT),
                ],
                primary_key="id",
            ),
        )
        for index in range(200):
            table.insert({"kind": "url" if index % 10 else "image", "n": index})
        return table

    def test_mcv_tracks_skew(self):
        table = self._table()
        mcv = table.common_values("kind")
        assert mcv is not None
        assert mcv.eq_fraction("url") == pytest.approx(0.9, abs=0.05)
        assert mcv.eq_fraction("image") == pytest.approx(0.1, abs=0.05)
        # unseen values are rarer than anything sampled
        assert mcv.eq_fraction("video") < mcv.eq_fraction("image")

    def test_mcv_feeds_string_equality_selectivity(self):
        table = self._table()
        common = Eq("kind", "url").selectivity(table)
        rare = Eq("kind", "image").selectivity(table)
        assert common == pytest.approx(0.9, abs=0.05)
        assert rare == pytest.approx(0.1, abs=0.05)
        assert Ne("kind", "url").selectivity(table) == pytest.approx(0.1, abs=0.05)

    def test_non_text_columns_have_no_mcv(self):
        table = self._table()
        assert table.common_values("n") is None

    def test_view_builds_its_own_mcv(self):
        table = self._table()
        view = table.read_view()
        mcv = view.common_values("kind")
        assert mcv is not None
        assert mcv.eq_fraction("url") == pytest.approx(0.9, abs=0.05)

    def test_from_values_handles_edge_cases(self):
        assert MostCommonValues.from_values([], 0) is None
        assert MostCommonValues.from_values([None, None], 2) is None
        assert MostCommonValues.from_values(["a", 3], 2) is None
        mcv = MostCommonValues.from_values(["a", "a", "b"], 3)
        assert mcv.eq_fraction("a") == pytest.approx(2 / 3)


# ----------------------------------------------------------------------
# property: 3-way chains agree with brute-force nested loops
# ----------------------------------------------------------------------

_KEYS = (None, 1, 2, 3)
_a_side = st.lists(
    st.tuples(st.sampled_from(_KEYS), st.sampled_from(("p", "q"))), max_size=8
)
_b_side = st.lists(
    st.tuples(
        st.sampled_from(_KEYS), st.sampled_from(_KEYS), st.sampled_from(("p", "q"))
    ),
    max_size=8,
)
_c_side = st.lists(
    st.tuples(st.sampled_from(_KEYS), st.sampled_from(("p", "q"))), max_size=8
)
_LAYOUTS = ("none", "hash", "sorted")


@given(
    a_rows=_a_side,
    b_rows=_b_side,
    c_rows=_c_side,
    b_layout=st.sampled_from(_LAYOUTS),
    c_layout=st.sampled_from(_LAYOUTS),
    how_b=st.sampled_from(("inner", "left")),
    how_c=st.sampled_from(("inner", "left")),
    filter_b=st.booleans(),
    ordered=st.booleans(),
    window=st.sampled_from(((None, 0), (3, 0), (4, 2), (0, 0))),
)
@settings(max_examples=120, deadline=None)
def test_planned_three_way_joins_agree_with_brute_force(
    a_rows, b_rows, c_rows, b_layout, c_layout, how_b, how_c,
    filter_b, ordered, window,
):
    a, b, c = _triple(a_rows, b_rows, c_rows, b_layout=b_layout, c_layout=c_layout)
    root = Query(a)
    if ordered:
        root = root.order_by("key")
    join = (
        root
        .join(b, on=("key", "akey"), prefix_right="b_", how=how_b)
        .join(c, on=("b_ckey", "key"), prefix_right="c_", how=how_c)
    )
    if filter_b:
        join = join.where(Ne("b_tag", "q"))

    a_scan = list(a.scan())
    if ordered:
        a_scan.sort(key=lambda row: (order_key(row["key"]), row["id"]))
    step1 = _brute_binary(
        a_scan, list(b.scan()), left_key="key", right_key="akey", how=how_b,
        prefix_right="b_", right_columns=("id", "akey", "ckey", "tag"),
    )
    expected = _brute_binary(
        step1, list(c.scan()), left_key="b_ckey", right_key="key", how=how_c,
        prefix_right="c_", right_columns=("id", "key", "label"),
    )
    if filter_b:
        # WHERE over combined rows; this store's Ne is plain !=, so a
        # padded NULL b_tag *passes* the filter
        expected = [row for row in expected if row["b_tag"] != "q"]
    got = join.all()
    assert _canonical(got) == _canonical(expected)
    limit, offset = window
    windowed = join.limit(limit).offset(offset) if limit is not None else join
    got_window = windowed.all()
    if limit is None:
        span = len(expected)
    else:
        span = max(0, min(limit, len(expected) - offset))
    assert len(got_window) == span
    if ordered:
        # positional comparison: the root order survives the joins and
        # limit/offset windows the ordered stream
        expected_keys = [row["key"] for row in expected]
        assert [row["key"] for row in got] == expected_keys
        if limit is not None:
            assert [row["key"] for row in got_window] == (
                expected_keys[offset:offset + limit]
            )
