"""Unit tests: vocabulary, posts, rfds, resources, corpus."""

import numpy as np
import pytest

from repro.errors import PostError, ResourceNotFoundError, VocabularyError
from repro.tagging import (
    Corpus,
    Post,
    TagCounter,
    TaggedResource,
    Vocabulary,
    rfd_from_posts,
    rfd_vector,
)
from repro.tagging.resource import ResourceKind


class TestVocabulary:
    def test_dense_ids(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        assert [vocabulary.id_of(t) for t in ("a", "b", "c")] == [0, 1, 2]

    def test_add_idempotent(self):
        vocabulary = Vocabulary()
        assert vocabulary.add("x") == vocabulary.add("x") == 0
        assert len(vocabulary) == 1

    def test_unknown_lookups_raise(self):
        vocabulary = Vocabulary(["a"])
        with pytest.raises(VocabularyError, match="unknown tag"):
            vocabulary.id_of("z")
        with pytest.raises(VocabularyError, match="unknown tag id"):
            vocabulary.tag_of(5)

    def test_frozen_rejects_new(self):
        vocabulary = Vocabulary(["a"]).freeze()
        assert vocabulary.add("a") == 0  # existing still fine
        with pytest.raises(VocabularyError, match="frozen"):
            vocabulary.add("b")

    def test_empty_tag_rejected(self):
        with pytest.raises(VocabularyError):
            Vocabulary().add("")

    def test_serialization_roundtrip(self):
        vocabulary = Vocabulary(["a", "b"]).freeze()
        clone = Vocabulary.from_list(vocabulary.to_list(), frozen=True)
        assert clone.frozen and list(clone) == ["a", "b"]

    def test_from_list_rejects_duplicates(self):
        with pytest.raises(VocabularyError, match="duplicate"):
            Vocabulary.from_list(["a", "a"])


class TestPost:
    def test_dedup_and_sort(self):
        post = Post.from_tags(1, 2, [5, 3, 5, 1])
        assert post.tag_ids == (1, 3, 5)
        assert post.size == 3

    def test_numpy_ints_coerced(self):
        post = Post.from_tags(1, 2, list(np.array([4, 2], dtype=np.int64)))
        assert all(type(tag_id) is int for tag_id in post.tag_ids)

    def test_empty_rejected(self):
        with pytest.raises(PostError, match="at least one tag"):
            Post.from_tags(1, 2, [])

    def test_negative_tag_rejected(self):
        with pytest.raises(PostError, match="negative"):
            Post.from_tags(1, 2, [-1])

    def test_with_index(self):
        post = Post.from_tags(1, 2, [0]).with_index(3)
        assert post.index == 3
        with pytest.raises(PostError):
            Post.from_tags(1, 2, [0]).with_index(0)

    def test_dict_roundtrip(self):
        post = Post.from_tags(1, 2, [0, 4], index=2, timestamp=1.5)
        assert Post.from_dict(post.to_dict()) == post


class TestTagCounter:
    def test_add_and_frequencies(self):
        counter = TagCounter()
        counter.add_post([0, 1])
        counter.add_post([0])
        assert counter.n_posts == 2
        assert counter.total_occurrences == 3
        assert counter.frequencies() == {0: 2 / 3, 1: 1 / 3}

    def test_remove_is_inverse(self):
        counter = TagCounter()
        counter.add_post([0, 1])
        counter.add_post([1, 2])
        counter.remove_post([1, 2])
        assert counter.counts() == {0: 1, 1: 1}
        assert counter.n_posts == 1

    def test_remove_below_zero_raises(self):
        counter = TagCounter()
        counter.add_post([0])
        with pytest.raises(PostError, match="already zero"):
            counter.remove_post([1])

    def test_top_tags_tie_break_by_id(self):
        counter = TagCounter()
        counter.add_post([3, 1])
        counter.add_post([3, 1, 2])
        assert counter.top_tags(2) == [(1, 2), (3, 2)]

    def test_vector_normalized(self):
        counter = TagCounter()
        counter.add_post([0, 2])
        vector = counter.vector(4)
        assert vector.sum() == pytest.approx(1.0)
        assert vector[1] == 0.0

    def test_empty_vector_is_zeros(self):
        assert TagCounter().vector(3).sum() == 0.0

    def test_copy_independent(self):
        counter = TagCounter()
        counter.add_post([0])
        clone = counter.copy()
        clone.add_post([1])
        assert counter.n_posts == 1


class TestRfdHelpers:
    def test_rfd_vector_range_check(self):
        with pytest.raises(PostError, match="out of range"):
            rfd_vector({5: 1}, 3)

    def test_rfd_from_posts(self):
        posts = [Post.from_tags(1, 1, [0]), Post.from_tags(1, 2, [0, 1])]
        vector = rfd_from_posts(posts, 3)
        assert vector[0] == pytest.approx(2 / 3)


class TestTaggedResource:
    def test_sequencing(self):
        resource = TaggedResource(1, "r")
        first = resource.add_post(Post.from_tags(1, 9, [0]))
        second = resource.add_post(Post.from_tags(1, 9, [1]))
        assert (first.index, second.index) == (1, 2)
        assert resource.n_posts == 2

    def test_wrong_resource_rejected(self):
        resource = TaggedResource(1, "r")
        with pytest.raises(PostError, match="targets resource 2"):
            resource.add_post(Post.from_tags(2, 9, [0]))

    def test_successive_deltas_lengths(self):
        resource = TaggedResource(1, "r")
        resource.add_post(Post.from_tags(1, 9, [0]))
        assert resource.successive_deltas == ()
        resource.add_post(Post.from_tags(1, 9, [0]))
        assert len(resource.successive_deltas) == 1
        assert resource.successive_deltas[0] == pytest.approx(0.0)

    def test_delta_reflects_change(self):
        resource = TaggedResource(1, "r")
        resource.add_post(Post.from_tags(1, 9, [0]))
        resource.add_post(Post.from_tags(1, 9, [1]))
        # rfd went from {0: 1.0} to {0: .5, 1: .5}: TV = 0.5
        assert resource.successive_deltas[0] == pytest.approx(0.5)

    def test_rfd_at_prefix(self):
        resource = TaggedResource(1, "r")
        resource.add_post(Post.from_tags(1, 9, [0]))
        resource.add_post(Post.from_tags(1, 9, [1]))
        assert resource.rfd_at(1, 2)[0] == pytest.approx(1.0)
        assert resource.rfd_at(0, 2).sum() == 0.0
        with pytest.raises(PostError, match="out of range"):
            resource.rfd_at(3, 2)

    def test_kind_coercion(self):
        assert TaggedResource(1, "r", kind="paper").kind is ResourceKind.PAPER
        with pytest.raises(ValueError):
            TaggedResource(1, "r", kind="hologram")

    def test_dict_roundtrip_preserves_rfd(self):
        resource = TaggedResource(1, "r", theta=np.array([0.5, 0.5]))
        resource.add_post(Post.from_tags(1, 9, [0]))
        resource.add_post(Post.from_tags(1, 9, [0, 1]))
        clone = TaggedResource.from_dict(resource.to_dict())
        assert clone.n_posts == 2
        assert clone.frequencies() == resource.frequencies()
        assert clone.successive_deltas == resource.successive_deltas


class TestCorpus:
    def test_post_routing(self, tiny_corpus):
        assert tiny_corpus.resource(1).n_posts == 2
        assert tiny_corpus.total_posts() == 3

    def test_duplicate_resource_rejected(self, tiny_corpus):
        with pytest.raises(PostError, match="already exists"):
            tiny_corpus.add_resource(TaggedResource(1, "dup"))

    def test_missing_resource_raises(self, tiny_corpus):
        with pytest.raises(ResourceNotFoundError):
            tiny_corpus.resource(99)
        with pytest.raises(ResourceNotFoundError):
            tiny_corpus.add_post(Post.from_tags(99, 1, [0]))

    def test_post_counts_vector(self, tiny_corpus):
        assert tiny_corpus.post_counts() == {1: 2, 2: 1, 3: 0}
        assert list(tiny_corpus.post_count_vector()) == [2, 1, 0]

    def test_copy_is_deep(self, tiny_corpus):
        clone = tiny_corpus.copy()
        clone.add_post(Post.from_tags(3, 1, [0]))
        assert tiny_corpus.resource(3).n_posts == 0
        assert clone.resource(3).n_posts == 1

    def test_dict_roundtrip(self, tiny_corpus):
        clone = Corpus.from_dict(tiny_corpus.to_dict())
        assert len(clone) == 3
        assert clone.post_counts() == tiny_corpus.post_counts()
        assert list(clone.vocabulary) == list(tiny_corpus.vocabulary)
