"""Unit tests: store column types, validation and coercion."""

import math

import pytest

from repro.store import ConstraintError, DataType
from repro.store.types import coerce_value, validate_value


class TestValidateValue:
    def test_int_accepts_int(self):
        validate_value(5, DataType.INT, "x")

    def test_int_rejects_bool(self):
        with pytest.raises(ConstraintError, match="expected int"):
            validate_value(True, DataType.INT, "x")

    def test_int_rejects_float(self):
        with pytest.raises(ConstraintError, match="expected int"):
            validate_value(5.0, DataType.INT, "x")

    def test_float_accepts_int_and_float(self):
        validate_value(5, DataType.FLOAT, "x")
        validate_value(5.5, DataType.FLOAT, "x")

    def test_float_rejects_nan_and_inf(self):
        with pytest.raises(ConstraintError, match="non-finite"):
            validate_value(math.nan, DataType.FLOAT, "x")
        with pytest.raises(ConstraintError, match="non-finite"):
            validate_value(math.inf, DataType.FLOAT, "x")

    def test_float_rejects_bool(self):
        with pytest.raises(ConstraintError):
            validate_value(True, DataType.FLOAT, "x")

    def test_text_accepts_str_rejects_bytes(self):
        validate_value("hello", DataType.TEXT, "x")
        with pytest.raises(ConstraintError):
            validate_value(b"hello", DataType.TEXT, "x")

    def test_bool_accepts_only_bool(self):
        validate_value(True, DataType.BOOL, "x")
        with pytest.raises(ConstraintError):
            validate_value(1, DataType.BOOL, "x")

    def test_timestamp_accepts_numbers(self):
        validate_value(1234.5, DataType.TIMESTAMP, "x")
        validate_value(0, DataType.TIMESTAMP, "x")

    def test_json_accepts_nested_structures(self):
        validate_value({"a": [1, 2, {"b": None}]}, DataType.JSON, "x")

    def test_json_rejects_non_string_keys(self):
        with pytest.raises(ConstraintError, match="JSON"):
            validate_value({1: "a"}, DataType.JSON, "x")

    def test_json_rejects_arbitrary_objects(self):
        with pytest.raises(ConstraintError, match="JSON"):
            validate_value(object(), DataType.JSON, "x")

    def test_none_always_rejected_here(self):
        with pytest.raises(ConstraintError, match="None"):
            validate_value(None, DataType.INT, "x")

    def test_error_names_the_column(self):
        with pytest.raises(ConstraintError, match="'quality'"):
            validate_value("nope", DataType.FLOAT, "quality")


class TestCoerceValue:
    def test_int_to_float_coercion(self):
        assert coerce_value(3, DataType.FLOAT, "x") == 3.0
        assert isinstance(coerce_value(3, DataType.FLOAT, "x"), float)

    def test_tuple_to_list_inside_json(self):
        assert coerce_value((1, 2), DataType.JSON, "x") == [1, 2]

    def test_nested_tuple_normalization(self):
        assert coerce_value({"a": (1, (2,))}, DataType.JSON, "x") == {"a": [1, [2]]}

    def test_none_passes_through(self):
        assert coerce_value(None, DataType.TEXT, "x") is None

    def test_no_lossy_coercion_of_str_to_int(self):
        with pytest.raises(ConstraintError):
            coerce_value("5", DataType.INT, "x")

    def test_bool_not_coerced_to_float(self):
        with pytest.raises(ConstraintError):
            coerce_value(True, DataType.FLOAT, "x")
