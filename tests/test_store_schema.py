"""Unit tests: schema declaration and row validation."""

import pytest

from repro.store import Column, DataType, Schema
from repro.store.errors import ConstraintError, SchemaError, UnknownColumnError


def make_schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("name", DataType.TEXT, unique=True),
            Column("score", DataType.FLOAT, nullable=True),
            Column("tags", DataType.JSON, default=list, has_default=True),
        ],
        primary_key="id",
    )


class TestSchemaDeclaration:
    def test_column_names_in_order(self):
        assert make_schema().column_names == ["id", "name", "score", "tags"]

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(
                [Column("a", DataType.INT), Column("a", DataType.TEXT)],
                primary_key="a",
            )

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError, match="primary key"):
            Schema([Column("a", DataType.INT)], primary_key="b")

    def test_primary_key_must_be_int_or_text(self):
        with pytest.raises(SchemaError, match="INT or TEXT"):
            Schema([Column("a", DataType.FLOAT)], primary_key="a")

    def test_primary_key_not_nullable(self):
        with pytest.raises(SchemaError, match="nullable"):
            Schema([Column("a", DataType.INT, nullable=True)], primary_key="a")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError, match="at least one column"):
            Schema([], primary_key="a")

    def test_underscore_column_names_rejected(self):
        with pytest.raises(SchemaError, match="_"):
            Column("_private", DataType.INT)

    def test_unique_columns_excludes_pk(self):
        assert make_schema().unique_columns() == ["name"]


class TestRowCoercion:
    def test_full_row_roundtrip(self):
        row = make_schema().coerce_row(
            {"id": 1, "name": "a", "score": 0.5, "tags": [1, 2]}
        )
        assert row == {"id": 1, "name": "a", "score": 0.5, "tags": [1, 2]}

    def test_defaults_applied(self):
        row = make_schema().coerce_row({"id": 1, "name": "a"})
        assert row["tags"] == []
        assert row["score"] is None

    def test_callable_default_fresh_per_row(self):
        schema = make_schema()
        row1 = schema.coerce_row({"id": 1, "name": "a"})
        row2 = schema.coerce_row({"id": 2, "name": "b"})
        row1["tags"].append(99)
        assert row2["tags"] == []

    def test_missing_not_null_raises(self):
        with pytest.raises(ConstraintError, match="'name'"):
            make_schema().coerce_row({"id": 1})

    def test_explicit_none_on_not_null_raises(self):
        with pytest.raises(ConstraintError, match="NOT NULL"):
            make_schema().coerce_row({"id": 1, "name": None})

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError, match="bogus"):
            make_schema().coerce_row({"id": 1, "name": "a", "bogus": 1})

    def test_partial_mode_skips_defaults(self):
        row = make_schema().coerce_row({"score": 1.0}, partial=True)
        assert row == {"score": 1.0}

    def test_partial_mode_still_validates(self):
        with pytest.raises(ConstraintError):
            make_schema().coerce_row({"score": "bad"}, partial=True)

    def test_input_not_mutated(self):
        source = {"id": 1, "name": "a"}
        make_schema().coerce_row(source)
        assert source == {"id": 1, "name": "a"}


class TestSchemaSerialization:
    def test_roundtrip_preserves_equality(self):
        schema = make_schema()
        clone = Schema.from_dict(schema.to_dict())
        assert clone == schema

    def test_roundtrip_drops_callable_defaults_gracefully(self):
        schema = make_schema()
        clone = Schema.from_dict(schema.to_dict())
        # The callable default (list) cannot be serialized; the clone
        # treats the column as having no default.
        with pytest.raises(ConstraintError):
            clone.coerce_row({"id": 1, "name": "a"})
