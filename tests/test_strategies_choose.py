"""Unit tests: the CHOOSERESOURCES implementations (Table I)."""

import numpy as np
import pytest

from repro.errors import StrategyError
from repro.quality import QualityBoard
from repro.strategies import (
    AllocationContext,
    FewestPostsFirst,
    FreeChoice,
    HybridFpMu,
    MostUnstableFirst,
    RoundRobin,
    UniformRandom,
    make_strategy,
)
from repro.tagging import Post


def make_context(corpus, *, eligible=None, budget=100, spent=0, seed=0):
    return AllocationContext(
        corpus=corpus,
        board=QualityBoard(corpus),
        rng=np.random.default_rng(seed),
        eligible=set(eligible) if eligible else set(),
        budget_total=budget,
        budget_spent=spent,
    )


class TestFewestPosts:
    def test_picks_least_tagged(self, tiny_corpus):
        context = make_context(tiny_corpus)
        assert FewestPostsFirst().choose(context, 1) == [3]

    def test_batch_spreads_over_distinct(self, tiny_corpus):
        context = make_context(tiny_corpus)
        assert FewestPostsFirst().choose(context, 3) == [3, 2, 1]

    def test_respects_eligibility(self, tiny_corpus):
        context = make_context(tiny_corpus, eligible=[1, 2])
        assert FewestPostsFirst().choose(context, 1) == [2]

    def test_tie_break_by_id(self, small_data_copy):
        corpus = small_data_copy
        zero_posts = [rid for rid, n in corpus.post_counts().items() if n == 0]
        if len(zero_posts) >= 2:
            context = make_context(corpus, eligible=zero_posts)
            assert FewestPostsFirst().choose(context, 2) == sorted(zero_posts)[:2]

    def test_empty_pool_raises(self, tiny_corpus):
        context = make_context(tiny_corpus)
        context.eligible = set()
        with pytest.raises(StrategyError, match="no eligible"):
            FewestPostsFirst().choose(context, 1)


class TestMostUnstable:
    def test_prefers_zero_post_then_fewest(self, tiny_corpus):
        context = make_context(tiny_corpus)
        # resources 2 (1 post) and 3 (0 posts) both have quality 0.
        assert MostUnstableFirst().choose(context, 2) == [3, 2]

    def test_prefers_unstable_over_stable(self, tiny_corpus):
        # Make resource 3 clearly stable, resource 1 unstable.
        for _ in range(6):
            tiny_corpus.add_post(Post.from_tags(3, 7, [0]))
        for tag in (0, 1, 2, 3) * 2:
            tiny_corpus.add_post(Post.from_tags(1, 7, [tag]))
        for _ in range(6):
            tiny_corpus.add_post(Post.from_tags(2, 7, [2, 3]))
        context = make_context(tiny_corpus)
        first = MostUnstableFirst().choose(context, 1)[0]
        assert first == 1

    def test_respects_eligibility(self, tiny_corpus):
        context = make_context(tiny_corpus, eligible=[1])
        assert MostUnstableFirst().choose(context, 1) == [1]


class TestFreeChoice:
    def test_follows_popularity(self, tiny_corpus):
        context = make_context(tiny_corpus, seed=5)
        picks = FreeChoice().choose(context, 300)
        counts = {rid: picks.count(rid) for rid in (1, 2, 3)}
        assert counts[1] > counts[2]
        assert counts[1] > counts[3]

    def test_exponent_zero_is_uniformish(self, tiny_corpus):
        context = make_context(tiny_corpus, seed=5)
        picks = FreeChoice(popularity_exponent=0.0).choose(context, 600)
        counts = np.array([picks.count(rid) for rid in (1, 2, 3)])
        assert counts.min() > 120  # roughly uniform

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            FreeChoice(popularity_exponent=-1.0)


class TestHybrid:
    def test_starts_in_fp_phase(self, tiny_corpus):
        strategy = HybridFpMu(min_posts=5)
        context = make_context(tiny_corpus)
        assert not strategy.in_mu_phase
        assert strategy.choose(context, 1) == [3]  # FP pick
        assert not strategy.in_mu_phase

    def test_switches_when_coverage_reached(self, tiny_corpus):
        strategy = HybridFpMu(min_posts=1)
        for resource_id in (1, 2, 3):
            while tiny_corpus.resource(resource_id).n_posts < 1:
                tiny_corpus.add_post(Post.from_tags(resource_id, 7, [0]))
        context = make_context(tiny_corpus)
        strategy.choose(context, 1)
        assert strategy.in_mu_phase

    def test_budget_fraction_rule(self, tiny_corpus):
        strategy = HybridFpMu(budget_fraction=0.5)
        early = make_context(tiny_corpus, budget=100, spent=10)
        strategy.choose(early, 1)
        assert not strategy.in_mu_phase
        late = make_context(tiny_corpus, budget=100, spent=60)
        strategy.choose(late, 1)
        assert strategy.in_mu_phase

    def test_reset_returns_to_fp(self, tiny_corpus):
        strategy = HybridFpMu(budget_fraction=0.0)
        strategy.choose(make_context(tiny_corpus), 1)
        assert strategy.in_mu_phase
        strategy.reset()
        assert not strategy.in_mu_phase

    def test_validation(self):
        with pytest.raises(StrategyError):
            HybridFpMu(min_posts=-1)
        with pytest.raises(StrategyError):
            HybridFpMu(budget_fraction=1.5)


class TestBaselines:
    def test_round_robin_cycles(self, tiny_corpus):
        strategy = RoundRobin()
        context = make_context(tiny_corpus)
        assert strategy.choose(context, 4) == [1, 2, 3, 1]
        strategy.reset()
        assert strategy.choose(context, 1) == [1]

    def test_uniform_random_covers_pool(self, tiny_corpus):
        context = make_context(tiny_corpus, seed=3)
        picks = set(UniformRandom().choose(context, 100))
        assert picks == {1, 2, 3}


class TestFactory:
    def test_all_names(self):
        for name in ("fc", "fp", "mu", "fp-mu", "random", "round-robin"):
            assert make_strategy(name).name == name

    def test_optimal_requires_gain_model(self):
        with pytest.raises(StrategyError, match="gain model"):
            make_strategy("optimal")

    def test_config_knobs_forwarded(self):
        from repro.config import StrategyConfig

        strategy = make_strategy(StrategyConfig(name="fp-mu", hybrid_min_posts=9))
        assert strategy.min_posts == 9
        fc = make_strategy(
            StrategyConfig(name="fc", free_choice_popularity_exponent=2.0)
        )
        assert fc.popularity_exponent == 2.0
