"""Unit tests: quality curves, gain models, the quality board."""

import numpy as np
import pytest

from repro.config import QualityConfig
from repro.quality import (
    AnalyticGain,
    EstimatedGain,
    QualityBoard,
    QualityCurve,
    expected_quality_at,
    fit_quality_curve,
)
from repro.tagging import Post


class TestQualityCurve:
    def test_validation(self):
        with pytest.raises(ValueError):
            QualityCurve(q_max=1.2, a=0.1, b=1.0)
        with pytest.raises(ValueError):
            QualityCurve(q_max=0.9, a=-0.1, b=1.0)
        with pytest.raises(ValueError):
            QualityCurve(q_max=0.9, a=0.1, b=0.0)

    def test_monotone_and_concave(self):
        curve = QualityCurve(q_max=0.95, a=0.8, b=2.0)
        assert curve.is_concave()
        values = curve.evaluate(np.arange(50))
        assert np.all(np.diff(values) > 0)

    def test_marginal_matches_difference(self):
        curve = QualityCurve(q_max=0.9, a=0.5, b=1.0)
        assert curve.marginal(4) == pytest.approx(
            float(curve.evaluate(5)) - float(curve.evaluate(4))
        )

    def test_marginals_vector(self):
        curve = QualityCurve(q_max=0.9, a=0.5, b=1.0)
        gains = curve.marginals(0, 10)
        assert len(gains) == 10
        assert np.all(np.diff(gains) < 0)

    def test_dict_roundtrip(self):
        curve = QualityCurve(q_max=0.9, a=0.5, b=1.0)
        assert QualityCurve.from_dict(curve.to_dict()) == curve

    def test_fit_recovers_parameters(self):
        truth = QualityCurve(q_max=0.92, a=0.7, b=2.5)
        ks = np.arange(0, 60, 3)
        fitted = fit_quality_curve(ks, np.asarray(truth.evaluate(ks)))
        check = np.arange(0, 80, 7)
        assert np.allclose(fitted.evaluate(check), truth.evaluate(check), atol=0.02)

    def test_fit_requires_samples(self):
        with pytest.raises(ValueError, match=">= 3 samples"):
            fit_quality_curve([1, 2], [0.1, 0.2])
        with pytest.raises(ValueError, match="shape"):
            fit_quality_curve([1, 2, 3], [0.1, 0.2])
        with pytest.raises(ValueError, match=">= 0"):
            fit_quality_curve([-1, 2, 3], [0.1, 0.2, 0.3])


class TestAnalyticGain:
    def build(self):
        targets = {
            1: np.array([0.5, 0.5, 0.0, 0.0]),
            2: np.array([0.25, 0.25, 0.25, 0.25]),
        }
        return AnalyticGain(targets, mean_post_size=2.0)

    def test_gains_positive_and_decreasing(self):
        gain = self.build()
        gains = [gain.gain(1, k) for k in range(10)]
        assert all(value > 0 for value in gains)
        assert all(b <= a for a, b in zip(gains, gains[1:]))

    def test_spread_distribution_needs_more_posts(self):
        gain = self.build()
        # Resource 2 (4-tag uniform) has a larger coefficient than
        # resource 1 (2-tag uniform): lower quality at equal k.
        assert gain.quality(2, 10) < gain.quality(1, 10)

    def test_quality_matches_formula(self):
        gain = self.build()
        coefficient = gain.coefficient(1)
        assert gain.quality(1, 7) == pytest.approx(
            float(expected_quality_at(7, coefficient))
        )

    def test_unknown_resource(self):
        with pytest.raises(KeyError):
            self.build().gain(99, 0)

    def test_gain_table(self):
        table = self.build().gain_table(1, 0, 5)
        assert table.shape == (5,)
        assert np.all(table > 0)

    def test_from_corpus_requires_theta(self, tiny_corpus):
        gain = AnalyticGain.from_corpus(tiny_corpus, 2.0)
        assert gain.gain(1, 0) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticGain({1: np.array([1.0])}, mean_post_size=0.0)


class TestEstimatedGain:
    def test_fit_from_samples(self):
        truth = QualityCurve(q_max=0.9, a=0.6, b=2.0)
        samples = {
            1: [(k, float(truth.evaluate(k))) for k in range(0, 40, 4)],
            2: [(0, 0.1), (5, 0.2)],  # too few -> no curve
        }
        estimated = EstimatedGain.fit(samples)
        assert estimated.has_curve(1)
        assert not estimated.has_curve(2)
        assert estimated.gain(1, 3) == pytest.approx(truth.marginal(3), abs=0.01)
        with pytest.raises(KeyError):
            estimated.curve(2)


class TestQualityBoard:
    def test_average_over_resources(self, tiny_corpus):
        board = QualityBoard(tiny_corpus)
        ids = tiny_corpus.resource_ids()
        average = sum(board.quality_of(rid) for rid in ids) / len(ids)
        assert board.average_quality() == pytest.approx(average)

    def test_cache_invalidated_by_new_posts(self, tiny_corpus):
        board = QualityBoard(tiny_corpus)
        resource = tiny_corpus.resource(1)
        before = board.quality_of(1)
        for _ in range(8):
            tiny_corpus.add_post(Post.from_tags(1, 5, [0]))
            board.observe(resource)
        assert board.quality_of(1) != before or board.quality_of(1) > 0.0
        assert board.quality_of(1) > before

    def test_history_tracks_post_counts(self, tiny_corpus):
        board = QualityBoard(tiny_corpus)
        board.quality_of(1)
        tiny_corpus.add_post(Post.from_tags(1, 5, [0]))
        board.observe(tiny_corpus.resource(1))
        history = board.history_of(1)
        assert [k for k, _q in history] == [2, 3]

    def test_threshold_buckets(self, tiny_corpus):
        board = QualityBoard(tiny_corpus)
        below = set(board.below(0.99))
        at_least = set(board.at_least(0.99))
        assert below | at_least == set(tiny_corpus.resource_ids())
        assert below & at_least == set()

    def test_most_unstable_prefers_no_posts(self, tiny_corpus):
        board = QualityBoard(tiny_corpus)
        # Resource 3 has zero posts -> quality 0 -> most unstable,
        # resource 2 has one post (also quality 0) -> tie broken by
        # fewer posts first.
        assert board.most_unstable(2) == [3, 2]

    def test_invalidate(self, tiny_corpus):
        board = QualityBoard(tiny_corpus)
        board.quality_of(1)
        board.invalidate(1)
        board.invalidate()
        assert board.quality_of(1) >= 0.0
