"""Property-based tests: rfd and quality invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quality import (
    hellinger,
    js_divergence,
    total_variation,
)
from repro.tagging import Post, TagCounter, TaggedResource, edit_distance

_posts = st.lists(
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
    min_size=1,
    max_size=25,
)


@given(_posts)
@settings(max_examples=100, deadline=None)
def test_rfd_always_sums_to_one(posts):
    counter = TagCounter()
    for tags in posts:
        counter.add_post(tags)
    frequencies = counter.frequencies()
    assert abs(sum(frequencies.values()) - 1.0) < 1e-9
    vector = counter.vector(16)
    assert abs(vector.sum() - 1.0) < 1e-9
    assert np.all(vector >= 0)


@given(_posts)
@settings(max_examples=60, deadline=None)
def test_counter_remove_inverts_add(posts):
    counter = TagCounter()
    for tags in posts:
        counter.add_post(tags)
    snapshot = counter.counts()
    extra = [0, 7, 15]
    counter.add_post(extra)
    counter.remove_post(extra)
    assert counter.counts() == snapshot


@given(_posts)
@settings(max_examples=60, deadline=None)
def test_successive_deltas_bounded(posts):
    resource = TaggedResource(1, "r")
    for tags in posts:
        resource.add_post(Post.from_tags(1, 2, tags))
    assert len(resource.successive_deltas) == max(0, len(posts) - 1)
    assert all(0.0 <= delta <= 1.0 for delta in resource.successive_deltas)


_distribution = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=4,
    max_size=4,
).filter(lambda values: sum(values) > 0.01)


@given(_distribution, _distribution)
@settings(max_examples=100, deadline=None)
def test_distances_are_symmetric_bounded_metrics(p_raw, q_raw):
    p = np.array(p_raw)
    q = np.array(q_raw)
    for metric in (total_variation, js_divergence, hellinger):
        forward = metric(p, q)
        backward = metric(q, p)
        assert abs(forward - backward) < 1e-9
        assert -1e-9 <= forward <= 1.0 + 1e-9
        assert metric(p, p) < 1e-9


@given(_distribution, _distribution, _distribution)
@settings(max_examples=60, deadline=None)
def test_tv_triangle_inequality(p_raw, q_raw, r_raw):
    p, q, r = np.array(p_raw), np.array(q_raw), np.array(r_raw)
    assert total_variation(p, r) <= (
        total_variation(p, q) + total_variation(q, r) + 1e-9
    )


_words = st.text(alphabet="abcdef", min_size=0, max_size=8)


@given(_words, _words)
@settings(max_examples=100, deadline=None)
def test_edit_distance_symmetric_and_identity(left, right):
    limit = 16
    assert edit_distance(left, right, limit=limit) == edit_distance(
        right, left, limit=limit
    )
    assert edit_distance(left, left, limit=limit) == 0


@given(_words, _words)
@settings(max_examples=60, deadline=None)
def test_edit_distance_bounded_by_longer_word(left, right):
    limit = 16
    assert edit_distance(left, right, limit=limit) <= max(len(left), len(right))
