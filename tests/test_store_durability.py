"""Durability suite: managed directories, checkpoints, crash recovery.

The centerpiece is a hypothesis property: for a random sequence of
transactions (insert/update/delete ops, committed or aborted) journaled
to a WAL, a crash at *any byte boundary* of the log recovers exactly
the state after some prefix of committed records — never a torn state,
never an aborted change, never an exception.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.store import (
    CHECKPOINT_KEEP,
    Column,
    Database,
    DataType,
    Schema,
    StoreError,
    load_database,
    save_database,
)


def item_schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("value", DataType.TEXT),
            Column("score", DataType.FLOAT, nullable=True),
        ],
        primary_key="id",
    )


def open_with_items(directory, **kwargs) -> Database:
    database = Database.open(directory, fsync="never", **kwargs)
    if not database.has_table("items"):
        database.create_table("items", item_schema())
    return database


# ---------------------------------------------------------------------------
# crash-recovery property
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete"]),
        st.integers(min_value=1, max_value=6),  # pk
        st.integers(min_value=0, max_value=99),  # value payload
    ),
    min_size=1,
    max_size=5,
)

_TXNS = st.lists(
    st.tuples(_OPS, st.booleans()),  # (ops, commit?)
    min_size=1,
    max_size=8,
)


def _apply_op(table, op: str, pk: int, value: int) -> None:
    """Apply one op if it is legal in the current state (else skip)."""
    if op == "insert" and not table.contains(pk):
        table.insert({"id": pk, "value": f"v{value}", "score": value / 100.0})
    elif op == "update" and table.contains(pk):
        table.update(pk, {"value": f"u{value}"})
    elif op == "delete" and table.contains(pk):
        table.delete(pk)


@given(txns=_TXNS, cut_fraction=st.floats(min_value=0.0, max_value=1.0))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_recovery_from_any_crash_point_is_a_committed_prefix(txns, cut_fraction):
    # tiny segments so the cut point regularly lands on and across
    # segment boundaries, exercising rotation in the crash model
    with tempfile.TemporaryDirectory() as raw_dir:
        directory = Path(raw_dir) / "state"
        database = open_with_items(directory, wal_segment_bytes=256)
        table = database.table("items")
        wal = database.wal

        # state after each WAL record, by record index (the schema DDL
        # for "items" is itself record 1)
        states_after_record = [None]  # index 0: empty directory, no tables
        records_seen = 0
        while len(wal) > records_seen:
            records_seen += 1
            states_after_record.append(database.to_snapshot()["tables"])

        for ops, commit in txns:
            try:
                with database.transaction():
                    for op, pk, value in ops:
                        _apply_op(table, op, pk, value)
                    if not commit:
                        raise _Abort()
            except _Abort:
                pass
            while len(wal) > records_seen:  # empty commits log nothing
                records_seen += 1
                states_after_record.append(database.to_snapshot()["tables"])
        database.close()

        # crash: truncate the log at an arbitrary byte boundary of its
        # logical concatenation.  A crash while appending to segment N
        # leaves segments 1..N-1 whole and N torn, with no later
        # segments — so the crashed copy keeps every full segment
        # below the cut plus a truncated copy of the one containing it.
        segments = sorted((directory / "wal.log").glob("wal-*.log"))
        raw = b"".join(segment.read_bytes() for segment in segments)
        cut = round(cut_fraction * len(raw))
        crashed = Path(raw_dir) / "crashed"
        (crashed / "wal.log").mkdir(parents=True)
        remaining = cut
        for segment in segments:
            if remaining <= 0:
                break
            data = segment.read_bytes()
            (crashed / "wal.log" / segment.name).write_bytes(data[:remaining])
            remaining -= len(data)

        # how many records fit entirely below the cut?
        survivors = 0
        offset = 0
        while True:
            newline = raw.find(b"\n", offset)
            if newline == -1 or newline + 1 > cut:
                break
            survivors += 1
            offset = newline + 1

        recovered = Database.open(crashed, fsync="never")
        try:
            expected = states_after_record[survivors]
            got = recovered.to_snapshot()["tables"]
            assert got == (expected if expected is not None else {})
            recovered.verify()
            assert recovered.recovery.records_replayed == survivors
        finally:
            recovered.close()


class _Abort(Exception):
    """Sentinel forcing a rollback inside the property run."""


# ---------------------------------------------------------------------------
# checkpoint atomicity (regression: snapshot-then-truncate ordering)
# ---------------------------------------------------------------------------

class TestCheckpointAtomicity:
    def test_crash_during_snapshot_write_preserves_wal(self, tmp_path, monkeypatch):
        """Injected crash *before* the atomic rename lands: the WAL must
        still hold every committed record, so nothing is lost."""
        database = open_with_items(tmp_path / "state")
        table = database.table("items")
        for index in range(4):
            table.insert({"value": f"v{index}"})
        records_before = len(database.wal)

        def explode(path, payload):
            raise OSError("simulated crash during checkpoint write")

        monkeypatch.setattr("repro.store.persist.write_bytes_atomic", explode)
        with pytest.raises(OSError, match="simulated crash"):
            database.checkpoint()
        monkeypatch.undo()

        assert len(database.wal) == records_before  # not truncated
        assert not list((tmp_path / "state").glob("checkpoint-*.json"))
        database.close()

        recovered = Database.open(tmp_path / "state", fsync="never")
        assert [row["value"] for row in recovered.table("items").scan()] == [
            "v0", "v1", "v2", "v3",
        ]
        recovered.close()

    def test_crash_between_rename_and_truncate_recovers_cleanly(
        self, tmp_path, monkeypatch
    ):
        """Injected crash *after* the snapshot landed but before the WAL
        prune: replay of already-checkpointed records is idempotent."""
        database = open_with_items(tmp_path / "state")
        table = database.table("items")
        for index in range(4):
            table.insert({"value": f"v{index}"})
        expected = database.to_snapshot()["tables"]

        monkeypatch.setattr(
            type(database.wal),
            "truncate_through",
            lambda self, lsn: (_ for _ in ()).throw(OSError("crash before prune")),
        )
        with pytest.raises(OSError, match="crash before prune"):
            database.checkpoint()
        monkeypatch.undo()
        database.close()

        # checkpoint landed AND the full WAL survived
        assert list((tmp_path / "state").glob("checkpoint-*.json"))
        recovered = Database.open(tmp_path / "state", fsync="never")
        assert recovered.to_snapshot()["tables"] == expected
        recovered.verify()
        recovered.close()

    def test_checkpoint_prunes_covered_records_and_old_files(self, tmp_path):
        """The WAL retains exactly the suffix the previous (retained)
        checkpoint generation would need — never less.  Pruning is
        segment-granular, so with one record per segment (segment_bytes
        small enough to rotate after every write) the retained record
        set is exact."""
        database = open_with_items(tmp_path / "state", wal_segment_bytes=1)
        table = database.table("items")
        previous_lsn = 0
        for round_number in range(CHECKPOINT_KEEP + 2):
            table.insert({"value": f"round-{round_number}"})
            lsn_before = database.wal.sequence
            stats = database.checkpoint()
            assert stats["kind"] == "incremental"
            assert stats["tables_rewritten"] == 1  # "items" is dirty
            # records above the *previous* generation's lsn survive
            kept = [record.lsn for record in database.wal.records()]
            assert kept == [
                lsn for lsn in range(previous_lsn + 1, lsn_before + 1)
            ]
            previous_lsn = lsn_before
        checkpoints = sorted((tmp_path / "state").glob("checkpoint-*.json"))
        assert len(checkpoints) == CHECKPOINT_KEEP
        database.close()

        recovered = Database.open(tmp_path / "state", fsync="never")
        assert len(recovered.table("items")) == CHECKPOINT_KEEP + 2
        recovered.close()

    def test_corrupt_newest_checkpoint_falls_back_without_loss(self, tmp_path):
        """An unreadable newest checkpoint falls back to the previous
        generation, whose WAL suffix was retained — full recovery."""
        database = open_with_items(tmp_path / "state")
        table = database.table("items")
        table.insert({"value": "gen1"})
        database.checkpoint()
        table.insert({"value": "gen2"})
        database.checkpoint()
        table.insert({"value": "tail"})
        expected = database.to_snapshot()["tables"]
        database.close()

        newest = sorted((tmp_path / "state").glob("checkpoint-*.json"))[-1]
        newest.write_text("{half a snapshot", encoding="utf-8")
        recovered = Database.open(tmp_path / "state", fsync="never")
        assert newest.name in recovered.recovery.skipped_checkpoints
        assert recovered.recovery.checkpoint_path is not None  # older gen
        assert recovered.to_snapshot()["tables"] == expected
        recovered.verify()
        recovered.close()

    def test_structurally_broken_newest_checkpoint_falls_back(self, tmp_path):
        """Valid JSON with a malformed payload must also fall back, not
        abort recovery."""
        database = open_with_items(tmp_path / "state")
        database.table("items").insert({"value": "gen1"})
        database.checkpoint()
        database.table("items").insert({"value": "gen2"})
        database.checkpoint()
        expected = database.to_snapshot()["tables"]
        database.close()

        newest = sorted((tmp_path / "state").glob("checkpoint-*.json"))[-1]
        newest.write_text('{"wal_lsn": 3, "tables": {"items": {}}}', encoding="utf-8")
        recovered = Database.open(tmp_path / "state", fsync="never")
        assert newest.name in recovered.recovery.skipped_checkpoints
        assert recovered.to_snapshot()["tables"] == expected
        recovered.close()

    def test_checkpoint_inside_transaction_rejected(self, tmp_path):
        from repro.store import TransactionError

        database = open_with_items(tmp_path / "state")
        with pytest.raises(TransactionError, match="checkpoint inside"):
            with database.transaction():
                database.checkpoint()
        database.close()

    def test_checkpoint_after_close_rejected(self, tmp_path):
        """A snapshot stamped with an unknown (zero) wal_lsn would make
        recovery replay the full retained log over it."""
        from repro.store import TransactionError

        database = open_with_items(tmp_path / "state")
        database.table("items").insert({"value": "a"})
        database.close()
        with pytest.raises(TransactionError, match="closed durable database"):
            database.checkpoint()

    def test_table_ddl_inside_transaction_rejected(self, tmp_path):
        """Regression: DDL autocommits its own WAL record, so inside a
        transaction it journaled *before* the commit record — a
        committed drop_table+insert log replayed out of order and made
        the directory permanently unrecoverable."""
        from repro.store import TransactionError

        database = open_with_items(tmp_path / "state")
        table = database.table("items")
        with pytest.raises(TransactionError, match="not supported"):
            with database.transaction():
                table.insert({"value": "x"})
                database.drop_table("items")
        # the rejected DDL aborted the transaction cleanly
        assert len(table) == 0
        with pytest.raises(TransactionError, match="not supported"):
            with database.transaction():
                database.create_table("other", item_schema())
        database.close()

        recovered = Database.open(tmp_path / "state", fsync="never")
        assert recovered.table_names() == ["items"]
        recovered.verify()
        recovered.close()


# ---------------------------------------------------------------------------
# incremental checkpoints: manifest + per-table files
# ---------------------------------------------------------------------------

class TestIncrementalCheckpoints:
    def _two_tables(self, directory) -> Database:
        database = open_with_items(directory)
        database.create_table("other", item_schema())
        database.table("items").insert({"value": "a"})
        database.table("other").insert({"value": "b"})
        return database

    def test_clean_tables_reuse_files_dirty_tables_rewrite(self, tmp_path):
        state = tmp_path / "state"
        database = self._two_tables(state)
        stats = database.checkpoint()
        assert stats["kind"] == "incremental"
        assert stats["generation"] == 1
        assert (stats["tables_rewritten"], stats["tables_reused"]) == (2, 0)

        database.table("items").insert({"value": "c"})
        stats = database.checkpoint()
        assert (stats["tables_rewritten"], stats["tables_reused"]) == (1, 1)
        # gen 2 rewrote "items" and re-references gen 1's "other" file
        assert (state / "table-items-000002.json").exists()
        assert (state / "table-other-000001.json").exists()
        assert not (state / "table-other-000002.json").exists()
        expected = database.to_snapshot()["tables"]
        database.close()

        recovered = Database.open(state, fsync="never")
        assert recovered.recovery.checkpoint_kind == "manifest"
        assert recovered.recovery.checkpoint_generation == 2
        assert recovered.recovery.checkpoint_table_files == 2
        assert recovered.recovery.records_replayed == 0
        assert recovered.to_snapshot()["tables"] == expected
        recovered.verify()
        recovered.close()

    def test_noop_checkpoint_reuses_every_file(self, tmp_path):
        database = self._two_tables(tmp_path / "state")
        database.checkpoint()
        stats = database.checkpoint()
        assert (stats["tables_rewritten"], stats["tables_reused"]) == (0, 2)
        assert stats["bytes_written"] > 0  # the manifest itself
        database.close()

    def test_full_checkpoint_interops_with_manifests(self, tmp_path):
        state = tmp_path / "state"
        database = self._two_tables(state)
        stats = database.checkpoint(full=True)
        assert stats["kind"] == "full"
        assert (state / "checkpoint-000001.json").exists()
        # a full snapshot leaves no per-table files to reuse: the next
        # incremental generation rewrites everything
        stats = database.checkpoint()
        assert (stats["tables_rewritten"], stats["tables_reused"]) == (2, 0)
        expected = database.to_snapshot()["tables"]
        database.close()

        recovered = Database.open(state, fsync="never")
        assert recovered.recovery.checkpoint_kind == "manifest"
        assert recovered.to_snapshot()["tables"] == expected
        recovered.close()

        # corrupting the newest manifest falls back to the full file
        newest = state / "checkpoint-000002.manifest.json"
        newest.write_text("{broken", encoding="utf-8")
        recovered = Database.open(state, fsync="never")
        assert recovered.recovery.checkpoint_kind == "full"
        assert recovered.to_snapshot()["tables"] == expected
        recovered.close()

    def test_unreferenced_table_files_are_garbage_collected(self, tmp_path):
        state = tmp_path / "state"
        database = self._two_tables(state)
        for round_number in range(CHECKPOINT_KEEP + 2):
            database.table("items").insert({"value": f"r{round_number}"})
            database.checkpoint()
        # only the retained generations' "items" files survive; the
        # never-rewritten "other" file stays referenced by every
        # manifest and must NOT be collected
        live = sorted(p.name for p in state.glob("table-*.json"))
        last = CHECKPOINT_KEEP + 2
        assert live == sorted(
            [f"table-items-{gen:06d}.json" for gen in (last - 1, last)]
            + ["table-other-000001.json"]
        )
        database.close()

    def test_missing_table_file_quarantines_manifest(self, tmp_path):
        state = tmp_path / "state"
        database = self._two_tables(state)
        database.checkpoint()
        database.table("items").insert({"value": "c"})
        database.checkpoint()
        expected = database.to_snapshot()["tables"]
        database.close()

        (state / "table-items-000002.json").unlink()
        recovered = Database.open(state, fsync="never")
        report = recovered.recovery
        assert "checkpoint-000002.manifest.json" in report.skipped_checkpoints
        assert report.checkpoint_generation == 1  # fell back
        assert (state / "checkpoint-000002.manifest.json.corrupt").exists()
        # gen 1 plus the retained WAL suffix reproduces the full state
        assert recovered.to_snapshot()["tables"] == expected
        recovered.verify()
        recovered.close()

    def test_recreated_table_never_reuses_stale_file(self, tmp_path):
        """Drop + recreate under the same name can reproduce the same
        version counter value; the baseline must not survive the drop,
        or the next checkpoint would re-reference the stale file."""
        state = tmp_path / "state"
        database = self._two_tables(state)
        database.checkpoint()
        database.drop_table("other")
        database.create_table("other", item_schema())
        database.table("other").insert({"value": "replacement"})
        stats = database.checkpoint()
        # untouched "items" is still reused; recreated "other" is dirty
        assert (stats["tables_rewritten"], stats["tables_reused"]) == (1, 1)
        database.close()

        recovered = Database.open(state, fsync="never")
        assert [row["value"] for row in recovered.table("other").scan()] == [
            "replacement"
        ]
        recovered.verify()
        recovered.close()

    @pytest.mark.parametrize("crash_call", [1, 2, 3])
    @pytest.mark.parametrize("after_replace", [False, True])
    def test_crash_anywhere_in_publish_sequence_is_lossless(
        self, tmp_path, monkeypatch, crash_call, after_replace
    ):
        """An incremental checkpoint publishes via a sequence of atomic
        renames (one per rewritten table file, then the manifest).  A
        crash before or after ANY of those renames must recover every
        acked commit: table files land before the manifest that
        references them, and the WAL is pruned only after the manifest
        rename — so the previous generation plus the unpruned log
        always reproduces the state."""
        import repro.store.persist as persist_module

        state = tmp_path / "state"
        database = self._two_tables(state)
        database.checkpoint()
        database.table("items").insert({"value": "c"})
        database.table("other").insert({"value": "d"})
        expected = database.to_snapshot()["tables"]

        calls = {"count": 0}
        real_replace = persist_module.os.replace

        def exploding_replace(src, dst):
            calls["count"] += 1
            if calls["count"] == crash_call:
                if after_replace:
                    real_replace(src, dst)
                raise OSError("simulated crash in checkpoint publish")
            return real_replace(src, dst)

        monkeypatch.setattr("repro.store.persist.os.replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            database.checkpoint()
        monkeypatch.undo()
        # both rewritten table files plus the manifest rename
        assert calls["count"] == crash_call
        database.close()

        recovered = Database.open(state, fsync="never")
        assert recovered.to_snapshot()["tables"] == expected
        recovered.verify()
        recovered.close()


# ---------------------------------------------------------------------------
# recovery semantics
# ---------------------------------------------------------------------------

class TestRecovery:
    def test_checkpoint_plus_suffix_replay(self, tmp_path):
        database = open_with_items(tmp_path / "state")
        table = database.table("items")
        table.insert({"value": "pre"})
        database.checkpoint()
        table.insert({"value": "post"})
        expected = database.to_snapshot()["tables"]
        database.close()

        recovered = Database.open(tmp_path / "state", fsync="never")
        report = recovered.recovery
        assert report.checkpoint_path is not None
        assert report.records_replayed == 1  # only the post-checkpoint insert
        assert recovered.to_snapshot()["tables"] == expected
        recovered.close()

    def test_ddl_after_checkpoint_is_replayed(self, tmp_path):
        database = open_with_items(tmp_path / "state")
        database.checkpoint()
        database.create_table(
            "extras",
            Schema([Column("id", DataType.INT), Column("k", DataType.TEXT)],
                   primary_key="id"),
        )
        database.table("extras").create_index("k", kind="hash")
        database.table("extras").insert({"k": "x"})
        database.close()

        recovered = Database.open(tmp_path / "state", fsync="never")
        extras = recovered.table("extras")
        assert extras.index_columns() == ["k"]
        assert extras.index_for("k").lookup("x") == {1}
        recovered.verify()
        recovered.close()

    def test_autoincrement_survives_recovery(self, tmp_path):
        database = open_with_items(tmp_path / "state")
        database.table("items").insert({"value": "a"})
        database.table("items").insert({"value": "b"})
        database.table("items").delete(2)
        database.close()

        recovered = Database.open(tmp_path / "state", fsync="never")
        # replaying insert+delete of pk 2 must not recycle the pk
        assert recovered.table("items").insert({"value": "c"}) == 3
        recovered.close()

    def test_reopen_after_recovery_continues_journaling(self, tmp_path):
        database = open_with_items(tmp_path / "state")
        database.table("items").insert({"value": "a"})
        database.close()
        second = Database.open(tmp_path / "state", fsync="never")
        second.table("items").insert({"value": "b"})
        second.close()
        third = Database.open(tmp_path / "state", fsync="never")
        assert sorted(r["value"] for r in third.table("items").scan()) == ["a", "b"]
        third.close()


# ---------------------------------------------------------------------------
# atomic snapshot writes (save_database)
# ---------------------------------------------------------------------------

class TestAtomicSave:
    def test_failed_save_preserves_previous_snapshot(self, tmp_path, monkeypatch):
        database = Database("d")
        database.create_table("items", item_schema())
        database.table("items").insert({"value": "original"})
        target = tmp_path / "db.json"
        save_database(database, target)

        database.table("items").insert({"value": "newer"})
        monkeypatch.setattr(
            "repro.store.persist.os.replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("simulated crash")),
        )
        with pytest.raises(OSError, match="simulated crash"):
            save_database(database, target)
        monkeypatch.undo()

        loaded = load_database(target)
        assert [row["value"] for row in loaded.table("items").scan()] == ["original"]

    def test_gzip_roundtrip_still_works(self, tmp_path):
        database = Database("d")
        database.create_table("items", item_schema())
        database.table("items").insert({"value": "z"})
        path = save_database(database, tmp_path / "db.json.gz")
        assert len(load_database(path).table("items")) == 1

    def test_load_missing_still_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no database snapshot"):
            load_database(tmp_path / "nope.json")
