"""Unit tests: RNG streams and configuration validation."""

import pytest

from repro.config import (
    CampaignConfig,
    DatasetConfig,
    QualityConfig,
    StrategyConfig,
    TaggerConfig,
)
from repro.errors import ConfigError
from repro.rng import RngRegistry, derive_seed


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(7).stream("x").integers(0, 1 << 30)
        b = RngRegistry(7).stream("x").integers(0, 1 << 30)
        assert int(a) == int(b)

    def test_different_names_different_streams(self):
        registry = RngRegistry(7)
        a = registry.stream("x").integers(0, 1 << 30)
        b = registry.stream("y").integers(0, 1 << 30)
        assert int(a) != int(b)

    def test_stream_identity_cached(self):
        registry = RngRegistry(7)
        assert registry.stream("x") is registry.stream("x")

    def test_creation_order_does_not_matter(self):
        r1 = RngRegistry(9)
        r1.stream("a")
        v1 = r1.stream("b").integers(0, 1 << 30)
        r2 = RngRegistry(9)
        v2 = r2.stream("b").integers(0, 1 << 30)
        assert int(v1) == int(v2)

    def test_fork_isolated_but_deterministic(self):
        v1 = RngRegistry(3).fork("rep-1").stream("x").integers(0, 1 << 30)
        v2 = RngRegistry(3).fork("rep-1").stream("x").integers(0, 1 << 30)
        v3 = RngRegistry(3).fork("rep-2").stream("x").integers(0, 1 << 30)
        assert int(v1) == int(v2)
        assert int(v1) != int(v3)

    def test_reset_recreates_streams(self):
        registry = RngRegistry(5)
        first = registry.stream("x").integers(0, 1 << 30)
        registry.reset()
        again = registry.stream("x").integers(0, 1 << 30)
        assert int(first) == int(again)

    def test_derive_seed_stable(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")  # type: ignore[arg-type]

    def test_streams_plural(self):
        registry = RngRegistry(1)
        streams = registry.streams(["a", "b"])
        assert len(streams) == 2
        assert streams[0] is registry.stream("a")


class TestConfigs:
    def test_defaults_valid(self):
        CampaignConfig().validate()

    def test_dataset_vocab_too_small(self):
        with pytest.raises(ConfigError, match="vocabulary_size"):
            DatasetConfig(vocabulary_size=5, tags_per_resource_max=40).validate()

    def test_dataset_tag_range_order(self):
        with pytest.raises(ConfigError, match="tags_per_resource_max"):
            DatasetConfig(tags_per_resource_min=30, tags_per_resource_max=10).validate()

    def test_dataset_zipf_positive(self):
        with pytest.raises(ConfigError, match="zipf"):
            DatasetConfig(zipf_exponent=0.0).validate()

    def test_tagger_noise_bounds(self):
        with pytest.raises(ConfigError, match="noise_rate"):
            TaggerConfig(noise_rate=1.5).validate()

    def test_quality_estimator_names(self):
        QualityConfig(estimator="window").validate()
        with pytest.raises(ConfigError, match="estimator"):
            QualityConfig(estimator="magic").validate()

    def test_quality_distance_names(self):
        with pytest.raises(ConfigError, match="distance"):
            QualityConfig(distance="euclid").validate()

    def test_strategy_names(self):
        for name in ("fc", "fp", "mu", "fp-mu", "random", "round-robin", "optimal"):
            StrategyConfig(name=name).validate()
        with pytest.raises(ConfigError, match="strategy name"):
            StrategyConfig(name="greedy").validate()

    def test_campaign_negative_budget(self):
        with pytest.raises(ConfigError, match="budget"):
            CampaignConfig(budget=-1).validate()

    def test_campaign_validates_subconfigs(self):
        bad = CampaignConfig(strategy=StrategyConfig(name="nope"))
        with pytest.raises(ConfigError):
            bad.validate()

    def test_describe_mentions_strategy(self):
        assert "fp-mu" in CampaignConfig().describe()
