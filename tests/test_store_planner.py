"""Tests for the cost-based query planner (the plan ADT in store/plan.py).

Two layers:

- explain() assertions that the planner picks the documented access
  paths (most-selective index for And, Intersect of two selective
  indexes, Union for indexed Or, streaming TopK for order_by+limit);
- hypothesis property tests that every plan produces exactly the rows
  a brute-force full scan produces, across random rows, predicates and
  index layouts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    And,
    Between,
    Column,
    Contains,
    Database,
    DataType,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Query,
    Schema,
)

# ----------------------------------------------------------------------
# explain() / access-path assertions
# ----------------------------------------------------------------------


@pytest.fixture()
def skewed():
    """100 rows: 'rare' kind on 10 of them, quality spread over [0, 1)."""
    database = Database("planner")
    schema = Schema(
        [
            Column("id", DataType.INT),
            Column("kind", DataType.TEXT),
            Column("owner", DataType.INT),
            Column("quality", DataType.FLOAT, nullable=True),
        ],
        primary_key="id",
    )
    table = database.create_table("items", schema)
    table.create_index("kind", kind="hash")
    table.create_index("owner", kind="hash")
    table.create_index("quality", kind="sorted")
    for index in range(100):
        table.insert(
            {
                "kind": "rare" if index % 10 == 0 else "common",
                "owner": index % 3,
                "quality": None if index == 99 else index / 100.0,
            }
        )
    return table


class TestAccessPaths:
    def test_and_picks_most_selective_index(self, skewed):
        # kind='rare' has 10 rows, owner=0 has ~34: kind must lead
        query = Query(skewed).where(And(Eq("owner", 0), Eq("kind", "rare")))
        plan = query.explain()
        lines = plan.splitlines()
        assert lines[0].startswith("intersect")
        assert "kind='rare'" in lines[1]
        assert "owner=0" in lines[2]
        assert query.count() == 4  # ids 1, 31, 61, 91

    def test_and_intersects_two_selective_indexes(self, skewed):
        query = Query(skewed).where(
            And(Eq("kind", "rare"), Ge("quality", 0.5))
        )
        plan = query.explain()
        assert "intersect" in plan
        assert "hash-index" in plan
        assert "sorted-index-range" in plan
        assert {row["id"] for row in query.all()} == {
            row["id"]
            for row in skewed.scan()
            if row["kind"] == "rare"
            and row["quality"] is not None
            and row["quality"] >= 0.5
        }

    def test_and_with_unindexed_part_filters_residual(self, skewed):
        query = Query(skewed).where(
            And(Eq("kind", "rare"), Ne("quality", 0.0))
        )
        plan = query.explain()
        assert plan.splitlines()[0].startswith("filter")
        assert "hash-index" in plan
        assert query.count() == 9

    def test_or_over_indexed_columns_becomes_union(self, skewed):
        query = Query(skewed).where(
            Or(Eq("kind", "rare"), Gt("quality", 0.95))
        )
        plan = query.explain()
        assert plan.splitlines()[0].startswith("union")
        brute = [
            row
            for row in skewed.scan()
            if row["kind"] == "rare"
            or (row["quality"] is not None and row["quality"] > 0.95)
        ]
        assert query.count() == len(brute)

    def test_or_with_unindexed_branch_scans(self, skewed):
        query = Query(skewed).where(
            Or(Eq("kind", "rare"), Contains("kind", "omm"))
        )
        assert "full-scan" in query.explain()
        assert query.count() == 100

    def test_order_by_limit_streams_topk(self, skewed):
        query = Query(skewed).order_by("quality", descending=True).limit(3)
        plan = query.explain()
        assert plan.splitlines()[0].startswith("top-k")
        assert "sorted-index-order" in plan
        assert [row["quality"] for row in query.all()] == [0.98, 0.97, 0.96]

    def test_topk_ascending_keeps_nulls_first(self, skewed):
        rows = Query(skewed).order_by("quality").limit(2).all()
        assert rows[0]["quality"] is None
        assert rows[1]["quality"] == 0.0

    def test_topk_applies_residual_filter_while_streaming(self, skewed):
        query = (
            Query(skewed)
            .where(Contains("kind", "rare"))
            .order_by("quality", descending=True)
            .limit(2)
        )
        assert "top-k" in query.explain()
        assert [row["quality"] for row in query.all()] == [0.9, 0.8]

    def test_order_without_limit_uses_ordered_scan(self, skewed):
        query = Query(skewed).order_by("quality")
        assert "sorted-index-order" in query.explain()
        values = [row["quality"] for row in query.all()]
        assert values[0] is None
        assert values[1:] == sorted(values[1:])

    def test_selective_index_with_order_prefers_fetch_and_sort(self, skewed):
        query = Query(skewed).where(Eq("kind", "rare")).order_by("quality")
        plan = query.explain()
        assert plan.splitlines()[0].startswith("sort")
        assert "hash-index" in plan

    def test_explain_does_not_execute(self, skewed):
        query = Query(skewed).where(Eq("bogus", 1))
        assert "full-scan" in query.explain()  # rendering never matches rows
        with pytest.raises(Exception):
            query.all()

    def test_count_skips_row_materialization_on_index_paths(self, skewed):
        query = Query(skewed).where(Eq("kind", "rare"))
        assert query.count() == 10
        assert query.count() == len(query.all())

    def test_offset_limit_against_topk(self, skewed):
        rows = (
            Query(skewed)
            .order_by("quality", descending=True)
            .offset(2)
            .limit(2)
            .all()
        )
        assert [row["quality"] for row in rows] == [0.96, 0.95]


class TestPlannerRobustness:
    def test_type_mismatched_values_fall_back_to_scan(self, skewed):
        # quality is FLOAT with a sorted index; a str probe value must
        # not crash index bisection — these return empty instead
        assert Query(skewed).where(In("quality", ["high"])).all() == []
        assert (
            Query(skewed).where(And(Eq("kind", "rare"), Eq("quality", "x"))).all()
            == []
        )

    def test_unhashable_values_fall_back_to_scan(self, skewed):
        assert Query(skewed).where(In("kind", [["a"]])).all() == []
        assert Query(skewed).where(Eq("kind", ["a"])).all() == []
        assert Query(skewed).where(Eq("id", ["a"])).all() == []

    def test_barely_selective_runner_up_is_not_intersected(self, skewed):
        # kind='rare' has 10 rows; quality>=0.0 has 99: materializing
        # the big pk set would cost more than filtering 10 rows
        query = Query(skewed).where(And(Eq("kind", "rare"), Ge("quality", 0.0)))
        plan = query.explain()
        assert "intersect" not in plan
        assert plan.splitlines()[0].startswith("filter")
        assert query.count() == 10

    def test_sort_and_stream_paths_agree_on_ties(self):
        # pks inserted out of order: both paths must break sort-value
        # ties in ascending pk order, in both directions
        database = Database("ties")
        schema = Schema(
            [
                Column("id", DataType.INT),
                Column("score", DataType.FLOAT),
                Column("rank", DataType.FLOAT),
            ],
            primary_key="id",
        )
        table = database.create_table("t", schema)
        table.create_index("score", kind="sorted")
        for pk in (5, 2, 9, 1):
            table.insert({"id": pk, "score": 0.5, "rank": 0.5})
        for descending in (False, True):
            streamed = Query(table).order_by("score", descending=descending).all()
            sorted_rows = Query(table).order_by("rank", descending=descending).all()
            assert [row["id"] for row in streamed] == [1, 2, 5, 9]
            assert [row["id"] for row in sorted_rows] == [1, 2, 5, 9]


# ----------------------------------------------------------------------
# property tests: plans agree with brute force
# ----------------------------------------------------------------------

_KINDS = ("k0", "k1", "k2")
_SCORES = (None, 0.0, 0.25, 0.5, 0.75, 1.0)
_INDEX_LAYOUTS = (
    (),
    (("kind", "hash"),),
    (("score", "sorted"),),
    (("kind", "hash"), ("score", "sorted")),
    (("kind", "sorted"), ("score", "hash")),
)

_rows_strategy = st.lists(
    st.tuples(st.sampled_from(_KINDS), st.sampled_from(_SCORES)),
    min_size=0,
    max_size=25,
)

_leaf = st.one_of(
    st.sampled_from(_KINDS).map(lambda kind: Eq("kind", kind)),
    st.sampled_from(_SCORES).map(lambda score: Eq("score", score)),
    st.sampled_from(_KINDS).map(lambda kind: Ne("kind", kind)),
    st.sampled_from((0.25, 0.5, 0.75)).map(lambda score: Lt("score", score)),
    st.sampled_from((0.25, 0.5, 0.75)).map(lambda score: Le("score", score)),
    st.sampled_from((0.25, 0.5, 0.75)).map(lambda score: Gt("score", score)),
    st.sampled_from((0.25, 0.5, 0.75)).map(lambda score: Ge("score", score)),
    st.tuples(
        st.sampled_from((0.0, 0.25)), st.sampled_from((0.5, 1.0))
    ).map(lambda bounds: Between("score", bounds[0], bounds[1])),
    st.lists(st.sampled_from(_KINDS), max_size=3).map(
        lambda kinds: In("kind", kinds)
    ),
    st.sampled_from(("0", "1", "k")).map(lambda s: Contains("kind", s)),
    st.integers(min_value=1, max_value=20).map(lambda pk: Eq("id", pk)),
)

_predicate = st.recursive(
    _leaf,
    lambda children: st.one_of(
        st.tuples(children, children).map(lambda pair: And(*pair)),
        st.tuples(children, children).map(lambda pair: Or(*pair)),
        children.map(Not),
    ),
    max_leaves=6,
)


def _build_table(rows, layout):
    database = Database("prop")
    schema = Schema(
        [
            Column("id", DataType.INT),
            Column("kind", DataType.TEXT),
            Column("score", DataType.FLOAT, nullable=True),
        ],
        primary_key="id",
    )
    table = database.create_table("t", schema)
    for column, kind in layout:
        table.create_index(column, kind=kind)
    for kind, score in rows:
        table.insert({"kind": kind, "score": score})
    return table


@given(
    rows=_rows_strategy,
    layout=st.sampled_from(_INDEX_LAYOUTS),
    predicate=_predicate,
)
@settings(max_examples=120, deadline=None)
def test_plans_agree_with_brute_force(rows, layout, predicate):
    table = _build_table(rows, layout)
    query = Query(table).where(predicate)
    brute = [row for row in table.scan() if predicate.matches(row)]
    got = query.all()
    assert sorted(row["id"] for row in got) == sorted(row["id"] for row in brute)
    assert query.count() == len(brute)
    assert query.exists() is (len(brute) > 0)
    first = query.first()
    assert (first is None) == (not brute)
    # executing twice gives the same answer (no builder-state mutation)
    assert query.all() == got


@given(
    rows=_rows_strategy,
    layout=st.sampled_from(_INDEX_LAYOUTS),
    predicate=_predicate,
    descending=st.booleans(),
    limit=st.integers(min_value=0, max_value=6),
    offset=st.integers(min_value=0, max_value=3),
)
@settings(max_examples=120, deadline=None)
def test_ordered_plans_agree_with_sorted_brute_force(
    rows, layout, predicate, descending, limit, offset
):
    from repro.store.plan import order_key

    table = _build_table(rows, layout)
    query = (
        Query(table)
        .where(predicate)
        .order_by("score", descending=descending)
        .offset(offset)
        .limit(limit)
    )
    brute = [row for row in table.scan() if predicate.matches(row)]
    brute.sort(key=lambda row: order_key(row["score"]), reverse=descending)
    # pks equal insertion order here, so tie order is fully determined
    assert query.all() == brute[offset : offset + limit]
    assert query.count() == len(brute[offset : offset + limit])
