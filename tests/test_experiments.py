"""Tests: experiment results container, registry, and the fast variants.

The fast variants ARE the reproduction's integration tests: each runs
the full pipeline (dataset -> strategies -> metrics) at CI scale and
asserts the paper's claims hold.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    EXPERIMENTS,
    ClaimCheck,
    ExperimentResult,
    list_experiments,
    run_experiment,
)


class TestResultContainer:
    def make(self) -> ExperimentResult:
        result = ExperimentResult("EXP-X", "demo", header=["a", "b"])
        result.add_row(1, 2.0)
        result.add_series("s", [0.0, 1.0], [0.1, 0.2])
        result.check("works", True, "detail")
        result.notes.append("a note")
        return result

    def test_row_width_enforced(self):
        result = ExperimentResult("EXP-X", "demo", header=["a"])
        with pytest.raises(ValueError, match="row width"):
            result.add_row(1, 2)

    def test_series_length_enforced(self):
        result = ExperimentResult("EXP-X", "demo")
        with pytest.raises(ValueError):
            result.add_series("s", [0.0], [0.1, 0.2])

    def test_to_text_sections(self):
        text = self.make().to_text()
        assert "EXP-X" in text
        assert "[PASS] works" in text
        assert "note: a note" in text

    def test_to_markdown(self):
        markdown = self.make().to_markdown()
        assert markdown.startswith("### EXP-X")
        assert "✅" in markdown

    def test_claims_all_pass_flag(self):
        result = self.make()
        assert result.all_claims_pass
        result.check("fails", False)
        assert not result.all_claims_pass

    def test_save_load_roundtrip(self, tmp_path):
        result = self.make()
        path = result.save(tmp_path / "r.json")
        loaded = ExperimentResult.load(path)
        assert loaded.to_dict() == result.to_dict()

    def test_claimcheck_str(self):
        assert str(ClaimCheck("c", False, "d")) == "[FAIL] c (d)"


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        artifacts = {entry["paper_artifact"] for entry in EXPERIMENTS.values()}
        assert any("Table I" in artifact for artifact in artifacts)
        assert any("Sec. IV" in artifact for artifact in artifacts)
        assert any("Figs. 3-8" in artifact for artifact in artifacts)
        assert any("Fig. 2" in artifact for artifact in artifacts)

    def test_listing_sorted(self):
        ids = [entry[0] for entry in list_experiments()]
        assert ids == sorted(ids)
        assert len(ids) == 15

    def test_unknown_id_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            run_experiment("EXP-NOPE")


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENTS))
def test_fast_variant_reproduces_claims(experiment_id):
    """Every experiment's fast variant runs green, claims included."""
    result = run_experiment(experiment_id, fast=True)
    assert result.experiment_id == experiment_id
    failed = [str(claim) for claim in result.claims if not claim.passed]
    assert not failed, f"{experiment_id} claims failed: {failed}"
    assert result.rows, f"{experiment_id} produced no table rows"
