"""Unit tests: divergences, stability estimators, oracle quality."""

import numpy as np
import pytest

from repro.config import QualityConfig
from repro.quality import (
    EwmaStability,
    SplitHalfStability,
    WindowStability,
    asymptotic_distribution,
    concentration_coefficient,
    corpus_oracle_quality,
    cosine_similarity,
    distance,
    expected_quality_at,
    expected_quality_curve,
    hellinger,
    js_divergence,
    kl_divergence,
    l2_distance,
    make_estimator,
    oracle_quality,
    total_variation,
)
from repro.tagging import Post, TaggedResource


class TestDivergences:
    p = np.array([0.5, 0.5, 0.0])
    q = np.array([0.0, 0.5, 0.5])

    def test_tv_basic(self):
        assert total_variation(self.p, self.p) == pytest.approx(0.0)
        assert total_variation(self.p, self.q) == pytest.approx(0.5)
        disjoint = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        assert total_variation(*disjoint) == pytest.approx(1.0)

    def test_tv_renormalizes(self):
        assert total_variation(np.array([2.0, 2.0]), np.array([1.0, 1.0])) == 0.0

    def test_zero_vector_conventions(self):
        zero = np.zeros(3)
        assert total_variation(zero, zero) == 0.0
        assert total_variation(zero, self.p) == 1.0
        assert js_divergence(zero, self.p) == 1.0
        assert hellinger(zero, zero) == 0.0
        assert cosine_similarity(zero, zero) == 1.0
        assert cosine_similarity(zero, self.p) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            total_variation(np.array([-0.1, 1.1]), self.p[:2])

    def test_js_symmetric_bounded(self):
        assert js_divergence(self.p, self.q) == pytest.approx(
            js_divergence(self.q, self.p)
        )
        assert 0.0 <= js_divergence(self.p, self.q) <= 1.0

    def test_kl_zero_iff_equal(self):
        assert kl_divergence(self.p, self.p) == pytest.approx(0.0, abs=1e-6)
        assert kl_divergence(self.p, self.q) > 0.0

    def test_hellinger_and_l2(self):
        assert hellinger(self.p, self.p) == pytest.approx(0.0)
        assert l2_distance(self.p, self.q) == pytest.approx(np.sqrt(0.5))

    def test_distance_dispatch(self):
        assert distance("tv", self.p, self.q) == total_variation(self.p, self.q)
        with pytest.raises(ValueError, match="unknown distance"):
            distance("manhattan", self.p, self.q)


def _resource_with_posts(posts: list[list[int]]) -> TaggedResource:
    resource = TaggedResource(1, "r")
    for tag_ids in posts:
        resource.add_post(Post.from_tags(1, 7, tag_ids))
    return resource


class TestStabilityEstimators:
    def test_below_min_posts_scores_zero(self):
        resource = _resource_with_posts([[0]])
        for estimator in (EwmaStability(), WindowStability(), SplitHalfStability()):
            assert estimator.quality(resource) == 0.0

    def test_identical_posts_are_perfectly_stable(self):
        resource = _resource_with_posts([[0, 1]] * 6)
        assert EwmaStability().quality(resource) == pytest.approx(1.0)
        assert WindowStability().quality(resource) == pytest.approx(1.0)
        assert SplitHalfStability().quality(resource) == pytest.approx(1.0)

    def test_alternating_posts_are_unstable(self):
        resource = _resource_with_posts([[0], [1], [0], [1], [0], [1]])
        assert EwmaStability().quality(resource) < 0.9
        stable = _resource_with_posts([[0]] * 6)
        assert EwmaStability().quality(resource) < EwmaStability().quality(stable)

    def test_quality_in_unit_interval(self):
        resource = _resource_with_posts([[0], [1], [2], [0, 1, 2]])
        for estimator in (EwmaStability(), WindowStability(), SplitHalfStability()):
            assert 0.0 <= estimator.quality(resource) <= 1.0

    def test_instability_complements_quality(self):
        resource = _resource_with_posts([[0], [1], [0]])
        estimator = EwmaStability()
        assert estimator.instability(resource) == pytest.approx(
            1.0 - estimator.quality(resource)
        )

    def test_make_estimator_dispatch(self):
        assert isinstance(make_estimator(QualityConfig(estimator="ewma")), EwmaStability)
        assert isinstance(
            make_estimator(QualityConfig(estimator="window")), WindowStability
        )
        assert isinstance(
            make_estimator(QualityConfig(estimator="split_half")), SplitHalfStability
        )

    def test_window_uses_recent_deltas_only(self):
        # Early chaos then long stability: window sees only the calm tail.
        posts = [[0], [1], [2], [3]] + [[0]] * 30
        resource = _resource_with_posts(posts)
        windowed = WindowStability(QualityConfig(estimator="window", window=5))
        assert windowed.quality(resource) > 0.95


class TestOracle:
    def test_asymptotic_distribution_mixture(self):
        theta = np.array([1.0, 0.0])
        noise = np.array([0.0, 1.0])
        mixture = asymptotic_distribution(theta, noise, 0.25)
        assert mixture == pytest.approx(np.array([0.75, 0.25]))

    def test_asymptotic_distribution_validation(self):
        with pytest.raises(ValueError, match="noise_rate"):
            asymptotic_distribution(np.array([1.0]), None, 1.5)
        with pytest.raises(ValueError, match="positive mass"):
            asymptotic_distribution(np.array([0.0]))
        with pytest.raises(ValueError, match="shape"):
            asymptotic_distribution(np.array([1.0]), np.array([0.5, 0.5]), 0.1)

    def test_oracle_quality_improves_with_matching_posts(self):
        target = np.array([0.5, 0.5, 0.0])
        resource = TaggedResource(1, "r", theta=target)
        empty_quality = oracle_quality(resource, target)
        resource.add_post(Post.from_tags(1, 7, [0, 1]))
        assert oracle_quality(resource, target) > empty_quality

    def test_corpus_quality_is_mean(self, tiny_corpus):
        targets = {
            resource.resource_id: resource.theta for resource in tiny_corpus
        }
        value = corpus_oracle_quality(tiny_corpus, targets)
        per_resource = [
            oracle_quality(resource, targets[resource.resource_id])
            for resource in tiny_corpus
        ]
        assert value == pytest.approx(sum(per_resource) / 3)

    def test_corpus_quality_missing_target(self, tiny_corpus):
        with pytest.raises(KeyError):
            corpus_oracle_quality(tiny_corpus, {})

    def test_expected_curve_monotone_concave(self):
        target = np.full(20, 0.05)
        curve = expected_quality_curve(target, 3.0, 100)
        gains = np.diff(curve)
        assert np.all(gains > 0)
        assert np.all(np.diff(gains) <= 1e-12)

    def test_concentration_coefficient_scaling(self):
        spread = np.full(100, 0.01)
        tight = np.zeros(100)
        tight[0] = 1.0
        assert concentration_coefficient(spread, 3.0) > concentration_coefficient(
            tight, 3.0
        )
        with pytest.raises(ValueError):
            concentration_coefficient(spread, 0.0)

    def test_expected_quality_at_unclipped(self):
        # Deliberately negative at k=0 for large coefficients.
        assert expected_quality_at(0, 2.0) < 0.0
        assert expected_quality_at(10_000, 2.0) > 0.95
