"""Tests for the compiled-plan cache and the empty-range planner fixes.

Covers the cache contract (hit/miss counting, value rebinding,
invalidation on index create/drop and on row-count drift, rebind
fallbacks for unhashable values and cached ``Empty`` plans) and the
SQL semantics of unsatisfiable ranges (NULL bounds, reversed bounds).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    And,
    Between,
    Column,
    Database,
    DataType,
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
    Or,
    Query,
    Schema,
    SchemaError,
    SortedIndex,
)


def _make_table(rows: int = 100):
    database = Database("cache")
    table = database.create_table(
        "items",
        Schema(
            [
                Column("id", DataType.INT),
                Column("kind", DataType.TEXT),
                Column("score", DataType.FLOAT, nullable=True),
            ],
            primary_key="id",
        ),
    )
    table.create_index("kind", kind="hash")
    table.create_index("score", kind="sorted")
    for index in range(rows):
        table.insert(
            {
                "kind": ("a", "b", "c")[index % 3],
                "score": None if index % 10 == 9 else index / rows,
            }
        )
    return database, table


class TestPlanCacheHitsAndMisses:
    def test_repeated_shape_hits_with_rebound_values(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        for position in range(10):
            kind = ("a", "b", "c")[position % 3]
            low = position / 100.0
            query = Query(table).where(
                And(Eq("kind", kind), Between("score", low, low + 0.1))
            )
            brute = [
                row
                for row in table.scan()
                if row["kind"] == kind
                and row["score"] is not None
                and low <= row["score"] <= low + 0.1
            ]
            assert query.count() == len(brute)
        assert table.plan_cache.misses == 1
        assert table.plan_cache.hits == 9

    def test_different_shapes_get_different_entries(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        Query(table).where(Eq("kind", "a")).count()
        Query(table).where(Ge("score", 0.5)).count()
        Query(table).where(Eq("kind", "a")).order_by("score").count()
        Query(table).where(Eq("kind", "a")).limit(3).count()
        assert table.plan_cache.misses == 4
        assert len(table.plan_cache) == 4

    def test_explain_reports_cache_status(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        query = Query(table).where(Eq("kind", "a"))
        assert "[plan-cache: miss]" in query.explain()
        assert "[plan-cache: hit]" in query.explain()

    def test_custom_predicate_bypasses_cache(self):
        from repro.store import Predicate

        class Weird(Predicate):
            def matches(self, row):
                return row["id"] % 2 == 0

        _db, table = _make_table()
        table.plan_cache.clear()
        query = Query(table).where(Weird())
        assert query.count() == 50
        assert "[plan-cache: bypass]" in query.explain()
        assert len(table.plan_cache) == 0

    def test_true_predicate_topk_is_cacheable(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        for _ in range(3):
            rows = Query(table).order_by("score", descending=True).limit(2).all()
        assert [row["score"] for row in rows] == [0.98, 0.97]
        assert table.plan_cache.hits == 2


class TestPlanCacheInvalidation:
    def test_create_index_invalidates_and_replans(self):
        database = Database("ddl")
        table = database.create_table(
            "t",
            Schema(
                [Column("id", DataType.INT), Column("kind", DataType.TEXT)],
                primary_key="id",
            ),
        )
        for index in range(20):
            table.insert({"kind": "x" if index % 4 == 0 else "y"})
        query = Query(table).where(Eq("kind", "x"))
        assert "full-scan" in query.explain()
        assert len(table.plan_cache) == 1
        table.create_index("kind", kind="hash")
        assert len(table.plan_cache) == 0
        assert "hash-index" in query.explain()
        assert query.count() == 5

    def test_drop_index_invalidates_and_falls_back_to_scan(self):
        _db, table = _make_table()
        query = Query(table).where(Eq("kind", "a"))
        assert "hash-index" in query.explain()
        table.drop_index("kind")
        assert len(table.plan_cache) == 0
        assert "full-scan" in query.explain()
        assert query.count() == 34

    def test_drop_index_refuses_unique_and_unknown_columns(self):
        database = Database("uniq")
        table = database.create_table(
            "t",
            Schema(
                [
                    Column("id", DataType.INT),
                    Column("name", DataType.TEXT, unique=True),
                ],
                primary_key="id",
            ),
        )
        with pytest.raises(SchemaError):
            table.drop_index("name")
        with pytest.raises(SchemaError):
            table.drop_index("id")

    def test_row_count_drift_evicts_stale_plans(self):
        _db, table = _make_table(rows=20)
        table.plan_cache.clear()
        query = Query(table).where(Eq("kind", "a"))
        query.count()
        assert table.plan_cache.misses == 1
        for index in range(100, 300):
            table.insert({"id": index, "kind": "a", "score": 0.5})
        query.count()  # 20 -> 220 rows: the cached plan must not survive
        assert table.plan_cache.invalidations >= 1
        assert table.plan_cache.misses == 2
        assert query.count() == 7 + 200

    def test_mutations_within_drift_keep_the_entry(self):
        _db, table = _make_table(rows=100)
        table.plan_cache.clear()
        query = Query(table).where(Eq("kind", "a"))
        first = query.count()
        table.insert({"id": 1000, "kind": "a", "score": 0.1})
        assert query.count() == first + 1  # correctness with a cached plan
        assert table.plan_cache.hits >= 1


class TestPlanCacheRebindFallbacks:
    def test_unhashable_value_after_cached_shape_replans(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        assert Query(table).where(Eq("kind", "a")).count() == 34
        # same shape, unhashable value: must not crash probing the index
        assert Query(table).where(Eq("kind", ["a"])).all() == []
        # and the shape keeps working for hashable values afterwards
        assert Query(table).where(Eq("kind", "b")).count() == 33

    def test_cached_empty_plan_does_not_poison_the_shape(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        assert Query(table).where(Between("score", 0.9, 0.1)).count() == 0
        query = Query(table).where(Between("score", 0.1, 0.9))
        assert query.count() > 0
        # and a reversed range again after the live replan
        assert Query(table).where(Between("score", 0.5, 0.2)).count() == 0

    def test_aliased_predicate_objects_do_not_misbind(self):
        # old tree reuses ONE Eq object in both slots; the new tree has
        # two distinct values of the same shape — a naive id-keyed
        # rebind would bind both slots to the second value
        _db, table = _make_table()
        table.plan_cache.clear()
        shared = Eq("kind", "a")
        assert Query(table).where(shared).where(shared).count() == 34
        query = Query(table).where(Eq("kind", "a")).where(Eq("kind", "b"))
        assert query.count() == 0

    def test_pk_lookup_rebinds(self):
        _db, table = _make_table()
        table.plan_cache.clear()
        assert Query(table).where(Eq("id", 1)).count() == 1
        assert Query(table).where(Eq("id", 999)).count() == 0
        assert table.plan_cache.hits == 1


class TestUnsatisfiableRanges:
    """Satellite: estimate and execution agree on empty/reversed ranges."""

    def test_sorted_index_reversed_and_half_open_spans(self):
        index = SortedIndex("score")
        for position, value in enumerate((0.1, 0.2, 0.3, 0.4)):
            index.add(value, position)
        assert index.estimate_range(0.4, 0.1) == 0
        assert index.range(0.4, 0.1) == []
        assert index.estimate_range(low=0.3) == len(index.range(low=0.3)) == 2
        assert index.estimate_range(high=0.2) == len(index.range(high=0.2)) == 2
        assert index.estimate_range() == 4

    def test_reversed_between_plans_empty(self):
        _db, table = _make_table()
        query = Query(table).where(Between("score", 0.8, 0.2))
        assert "empty(" in query.explain()
        assert query.all() == []

    @pytest.mark.parametrize(
        "predicate",
        [
            Lt("score", None),
            Le("score", None),
            Gt("score", None),
            Ge("score", None),
            Between("score", None, 0.5),
            Between("score", 0.5, None),
        ],
    )
    def test_null_bounds_match_nothing_indexed_or_not(self, predicate):
        _db, table = _make_table()
        query = Query(table).where(predicate)
        assert "empty(" in query.explain()
        assert query.all() == []
        # unindexed twin: the residual filter path agrees
        database = Database("bare")
        bare = database.create_table(
            "t",
            Schema(
                [
                    Column("id", DataType.INT),
                    Column("score", DataType.FLOAT, nullable=True),
                ],
                primary_key="id",
            ),
        )
        bare.insert({"score": 0.3})
        bare.insert({"score": None})
        assert Query(bare).where(predicate).all() == []

    def test_empty_range_composes_with_and_or(self):
        _db, table = _make_table()
        empty = Between("score", 0.9, 0.1)
        assert Query(table).where(And(Eq("kind", "a"), empty)).count() == 0
        union = Query(table).where(Or(Eq("kind", "a"), empty))
        assert union.count() == 34


# ----------------------------------------------------------------------
# property test: cached execution always agrees with brute force
# ----------------------------------------------------------------------

_shape_values = st.tuples(
    st.sampled_from(("a", "b", "c")),
    st.sampled_from((0.0, 0.2, 0.5, 0.8, None)),
    st.sampled_from((0.1, 0.4, 0.9, None)),
)


@given(bindings=st.lists(_shape_values, min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_cached_plans_agree_with_brute_force_across_bindings(bindings):
    """Reusing one shape with many value bindings (including NULL and
    reversed bounds) never changes results vs. a fresh filter."""
    _db, table = _make_table(rows=40)
    table.plan_cache.clear()
    for kind, low, high in bindings:
        predicate = And(Eq("kind", kind), Between("score", low, high))
        got = Query(table).where(predicate).all()
        brute = [row for row in table.scan() if predicate.matches(row)]
        assert sorted(row["id"] for row in got) == sorted(row["id"] for row in brute)
