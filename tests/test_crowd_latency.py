"""Tests: platform turnaround accounting and the EXP-L experiment."""

import numpy as np
import pytest

from repro.crowd import CrowdWorker, CrowdPlatform, TaggingTask
from repro.taggers import NoiseModel, preset
from repro.tagging import TaggedResource, Vocabulary


def make_platform(mean_latency: float):
    vocabulary = Vocabulary([f"t{i}" for i in range(8)])
    noise = NoiseModel.with_typo_tags(vocabulary, 2)
    workers = [
        CrowdWorker(worker_id=10 + index, profile=preset("casual"))
        for index in range(4)
    ]
    platform = CrowdPlatform(
        workers, noise, np.random.default_rng(3), mean_latency=mean_latency
    )
    theta = np.zeros(len(vocabulary))
    theta[:3] = [0.5, 0.3, 0.2]
    platform.register_resource(TaggedResource(1, "r", theta=theta))
    return platform


class TestTurnaround:
    def test_task_turnaround_recorded(self):
        platform = make_platform(mean_latency=2.0)
        task = TaggingTask(project_id=1, resource_id=1, pay=0.01)
        platform.execute(task)
        assert task.published_at is not None
        assert task.turnaround is not None
        assert task.turnaround >= 0.0

    def test_turnaround_none_before_submission(self):
        task = TaggingTask(project_id=1, resource_id=1, pay=0.01)
        assert task.turnaround is None

    def test_stats_mean_turnaround(self):
        platform = make_platform(mean_latency=1.0)
        for _ in range(20):
            platform.publish(TaggingTask(project_id=1, resource_id=1, pay=0.01))
        platform.tick(10_000.0)
        stats = platform.stats
        assert stats.submitted == 20
        assert stats.mean_turnaround > 0.0
        done = platform.collect()
        expected = sum(task.turnaround for task in done) / len(done)
        assert stats.mean_turnaround == pytest.approx(expected)

    def test_empty_stats_mean_is_zero(self):
        platform = make_platform(mean_latency=1.0)
        assert platform.stats.mean_turnaround == 0.0

    def test_slower_pool_has_larger_turnaround(self):
        fast = make_platform(mean_latency=0.5)
        slow = make_platform(mean_latency=8.0)
        for platform in (fast, slow):
            for _ in range(40):
                platform.publish(TaggingTask(project_id=1, resource_id=1, pay=0.01))
            platform.tick(10_000.0)
        assert slow.stats.mean_turnaround > fast.stats.mean_turnaround


class TestLatencyExperiment:
    def test_fast_variant_claims(self):
        from repro.experiments import run_experiment

        result = run_experiment("EXP-L", fast=True)
        assert result.all_claims_pass
        assert len(result.rows) == 2
