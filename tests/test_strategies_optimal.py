"""Unit + property tests: greedy vs DP allocation optimality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StrategyError
from repro.quality import AnalyticGain, QualityCurve
from repro.quality.gain import GainModel
from repro.strategies import allocation_value, dp_allocate, dp_value, greedy_allocate


class CurveGain(GainModel):
    """Gain model over explicit concave curves (test harness)."""

    def __init__(self, curves: dict[int, QualityCurve]) -> None:
        self._curves = curves

    def quality(self, resource_id: int, k: int) -> float:
        return float(self._curves[resource_id].evaluate(k))

    def gain(self, resource_id: int, k: int) -> float:
        return self._curves[resource_id].marginal(k)


def make_gain(n: int, seed: int) -> tuple[CurveGain, dict[int, int]]:
    rng = np.random.default_rng(seed)
    curves = {}
    counts = {}
    for resource_id in range(1, n + 1):
        curves[resource_id] = QualityCurve(
            q_max=float(rng.uniform(0.7, 1.0)),
            a=float(rng.uniform(0.2, 2.0)),
            b=float(rng.uniform(0.5, 4.0)),
        )
        counts[resource_id] = int(rng.integers(0, 10))
    return CurveGain(curves), counts


class TestGreedy:
    def test_budget_exactly_spent(self):
        gain, counts = make_gain(5, 1)
        allocation = greedy_allocate(gain, counts, 17)
        assert sum(allocation.values()) == 17
        assert all(x >= 0 for x in allocation.values())

    def test_zero_budget(self):
        gain, counts = make_gain(3, 1)
        allocation = greedy_allocate(gain, counts, 0)
        assert all(x == 0 for x in allocation.values())

    def test_empty_resources_rejected(self):
        gain, _counts = make_gain(1, 1)
        with pytest.raises(StrategyError):
            greedy_allocate(gain, {}, 5)
        with pytest.raises(StrategyError):
            greedy_allocate(gain, {1: 0}, -1)

    def test_prefers_high_gain_resource(self):
        curves = {
            1: QualityCurve(q_max=1.0, a=2.0, b=1.0),   # steep: big gains
            2: QualityCurve(q_max=1.0, a=0.05, b=1.0),  # nearly flat
        }
        allocation = greedy_allocate(CurveGain(curves), {1: 0, 2: 0}, 10)
        assert allocation[1] > allocation[2]


class TestDp:
    def test_matches_greedy_on_concave(self):
        for seed in range(5):
            gain, counts = make_gain(6, seed)
            budget = 20
            greedy_val = allocation_value(
                gain, counts, greedy_allocate(gain, counts, budget)
            )
            exact_val = dp_value(gain, counts, budget)
            assert greedy_val == pytest.approx(exact_val, abs=1e-9)

    def test_dp_allocation_sums_to_budget(self):
        gain, counts = make_gain(4, 7)
        allocation = dp_allocate(gain, counts, 12)
        assert sum(allocation.values()) == 12

    def test_size_guard(self):
        gain, counts = make_gain(3, 1)
        with pytest.raises(StrategyError, match="too large"):
            dp_allocate(gain, counts, 10_000)

    def test_analytic_gain_agreement(self, small_data):
        """Greedy == DP on the real oracle curves of a generated corpus."""
        targets = {
            rid: small_data.dataset.oracle_targets()[rid]
            for rid in list(small_data.dataset.corpus.resource_ids())[:6]
        }
        gain = AnalyticGain(targets, small_data.dataset.mean_post_size)
        counts = {rid: 2 for rid in targets}
        greedy_val = allocation_value(gain, counts, greedy_allocate(gain, counts, 15))
        assert greedy_val == pytest.approx(dp_value(gain, counts, 15), abs=1e-9)


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_property_greedy_equals_dp_on_concave_curves(n, budget, seed):
    """The core optimality property behind the paper's 'optimal' line."""
    gain, counts = make_gain(n, seed)
    greedy_val = allocation_value(gain, counts, greedy_allocate(gain, counts, budget))
    exact_val = dp_value(gain, counts, budget)
    assert greedy_val == pytest.approx(exact_val, abs=1e-8)


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_property_dp_never_below_greedy(n, budget, seed):
    """DP is exact, so it can never do worse than greedy on anything."""
    gain, counts = make_gain(n, seed)
    greedy_val = allocation_value(gain, counts, greedy_allocate(gain, counts, budget))
    assert dp_value(gain, counts, budget) >= greedy_val - 1e-9
