"""Unit tests: predicates, query execution, planner, joins, aggregates."""

import pytest

from repro.store import (
    And,
    Between,
    Contains,
    Eq,
    Ge,
    Gt,
    In,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Query,
    hash_join,
)
from repro.store.errors import QueryError, UnknownColumnError


@pytest.fixture()
def filled(resources_table):
    database, table = resources_table
    rows = [
        {"name": "alpha", "kind": "url", "quality": 0.1},
        {"name": "beta", "kind": "url", "quality": 0.5},
        {"name": "gamma", "kind": "image", "quality": 0.9},
        {"name": "delta", "kind": "image", "quality": None},
        {"name": "epsilon", "kind": "video", "quality": 0.5},
    ]
    for row in rows:
        table.insert(row)
    return database, table


class TestPredicates:
    def test_eq_ne(self, filled):
        _db, table = filled
        assert Query(table).where(Eq("kind", "url")).count() == 2
        assert Query(table).where(Ne("kind", "url")).count() == 3

    def test_comparisons_skip_nulls(self, filled):
        _db, table = filled
        assert Query(table).where(Ge("quality", 0.5)).count() == 3
        assert Query(table).where(Lt("quality", 0.5)).count() == 1
        assert Query(table).where(Le("quality", 0.5)).count() == 3
        assert Query(table).where(Gt("quality", 0.5)).count() == 1

    def test_in_and_between(self, filled):
        _db, table = filled
        assert Query(table).where(In("kind", ["url", "video"])).count() == 3
        assert Query(table).where(Between("quality", 0.4, 0.6)).count() == 2

    def test_contains_case_insensitive(self, filled):
        _db, table = filled
        assert Query(table).where(Contains("name", "ALPH")).count() == 1

    def test_in_handles_unhashable_values(self, filled):
        _db, table = filled
        table.insert(
            {"name": "zeta", "kind": "url", "quality": 0.2, "meta": [1, 2]}
        )
        # unhashable candidate values force the linear fallback
        assert Query(table).where(In("meta", [[1, 2]])).count() == 1
        # unhashable row value against a hashable candidate set
        assert Query(table).where(In("meta", ["x", None])).count() == 5

    def test_combinators(self, filled):
        _db, table = filled
        q = Query(table).where(
            Or(And(Eq("kind", "url"), Ge("quality", 0.3)), Eq("name", "gamma"))
        )
        assert {row["name"] for row in q.all()} == {"beta", "gamma"}

    def test_not_and_operator_overloads(self, filled):
        _db, table = filled
        predicate = ~Eq("kind", "url") & Ge("quality", 0.5)
        assert {r["name"] for r in Query(table).where(predicate).all()} == {
            "gamma",
            "epsilon",
        }
        predicate_or = Eq("kind", "video") | Eq("kind", "image")
        assert Query(table).where(predicate_or).count() == 3

    def test_unknown_column_raises(self, filled):
        _db, table = filled
        with pytest.raises(UnknownColumnError):
            Query(table).where(Eq("bogus", 1)).all()

    def test_empty_and_or_rejected(self):
        with pytest.raises(QueryError):
            And()
        with pytest.raises(QueryError):
            Or()


class TestOrderLimitProjection:
    def test_order_by_with_nulls_first(self, filled):
        _db, table = filled
        names = [r["name"] for r in Query(table).order_by("quality").all()]
        assert names[0] == "delta"  # NULL first
        assert names[-1] == "gamma"

    def test_order_descending_limit_offset(self, filled):
        _db, table = filled
        rows = (
            Query(table)
            .order_by("quality", descending=True)
            .offset(1)
            .limit(2)
            .all()
        )
        assert [r["name"] for r in rows] == ["beta", "epsilon"]

    def test_projection(self, filled):
        _db, table = filled
        rows = Query(table).select(["name"]).limit(1).all()
        assert rows == [{"name": "alpha"}]

    def test_first_and_empty_first(self, filled):
        _db, table = filled
        assert Query(table).where(Eq("kind", "url")).first()["name"] == "alpha"
        assert Query(table).where(Eq("kind", "pdf")).first() is None

    def test_first_does_not_mutate_query(self, filled):
        _db, table = filled
        query = Query(table).where(Eq("kind", "url"))
        assert query.first()["name"] == "alpha"
        assert query.count() == 2  # regression: first() used to set limit=1
        assert len(query.all()) == 2

    def test_exists(self, filled):
        _db, table = filled
        assert Query(table).where(Eq("kind", "url")).exists()
        assert not Query(table).where(Eq("kind", "pdf")).exists()

    def test_invalid_limit_offset(self, filled):
        _db, table = filled
        with pytest.raises(QueryError):
            Query(table).limit(-1)
        with pytest.raises(QueryError):
            Query(table).offset(-1)

    def test_order_by_unknown_column(self, filled):
        _db, table = filled
        with pytest.raises(UnknownColumnError):
            Query(table).order_by("bogus")


class TestPlanner:
    def test_pk_lookup_plan(self, filled):
        _db, table = filled
        query = Query(table).where(Eq("id", 3))
        assert query.all()[0]["name"] == "gamma"
        assert "pk-lookup" in query.explain()

    def test_hash_index_plan(self, filled):
        _db, table = filled
        query = Query(table).where(Eq("kind", "url"))
        query.all()
        assert "hash-index" in query.explain()

    def test_sorted_index_range_plan(self, filled):
        _db, table = filled
        query = Query(table).where(Ge("quality", 0.5))
        assert query.count() == 3
        assert "sorted-index-range" in query.explain()

    def test_between_uses_sorted_index(self, filled):
        _db, table = filled
        query = Query(table).where(Between("quality", 0.0, 1.0))
        query.all()
        assert "sorted-index-range" in query.explain()

    def test_unique_column_gets_implicit_index(self, filled):
        _db, table = filled
        query = Query(table).where(Eq("name", "beta"))
        assert query.count() == 1
        assert "hash-index" in query.explain()

    def test_non_equality_on_unindexed_shape_falls_back_to_scan(self, filled):
        _db, table = filled
        query = Query(table).where(Contains("name", "et"))
        assert query.count() == 1
        assert "full-scan" in query.explain()

    def test_index_plan_inside_and(self, filled):
        _db, table = filled
        query = Query(table).where(
            And(Contains("name", "a"), Eq("kind", "image"))
        )
        query.all()
        assert "hash-index" in query.explain()

    def test_planner_and_scan_agree(self, filled):
        _db, table = filled
        indexed = Query(table).where(Eq("kind", "image")).pks()
        scanned = [
            row["id"] for row in table.scan() if row["kind"] == "image"
        ]
        assert sorted(indexed) == sorted(scanned)


class TestAggregates:
    def test_scalar_aggregates(self, filled):
        _db, table = filled
        q = lambda: Query(table)
        assert q().aggregate("quality", "count") == 4  # nulls excluded
        assert q().aggregate("quality", "sum") == pytest.approx(2.0)
        assert q().aggregate("quality", "avg") == pytest.approx(0.5)
        assert q().aggregate("quality", "min") == 0.1
        assert q().aggregate("quality", "max") == 0.9

    def test_aggregate_on_empty_set(self, filled):
        _db, table = filled
        assert Query(table).where(Eq("kind", "pdf")).aggregate("quality", "avg") is None
        assert Query(table).where(Eq("kind", "pdf")).aggregate("quality", "count") == 0

    def test_unknown_aggregate(self, filled):
        _db, table = filled
        with pytest.raises(QueryError):
            Query(table).aggregate("quality", "median")

    def test_group_by_unknown_aggregate(self, filled):
        _db, table = filled
        with pytest.raises(QueryError):
            Query(table).group_by("kind", {"m": ("quality", "median")})

    def test_group_by(self, filled):
        _db, table = filled
        groups = Query(table).group_by(
            "kind", {"n": ("id", "count"), "avg_q": ("quality", "avg")}
        )
        assert groups["url"]["n"] == 2
        assert groups["url"]["avg_q"] == pytest.approx(0.3)
        assert groups["image"]["n"] == 2
        assert groups["image"]["avg_q"] == pytest.approx(0.9)


class TestHashJoin:
    def test_inner_join(self):
        left = [{"id": 1, "x": "a"}, {"id": 2, "x": "b"}]
        right = [{"rid": 1, "y": 10}, {"rid": 1, "y": 20}]
        joined = hash_join(left, right, left_key="id", right_key="rid")
        assert len(joined) == 2
        assert {row["y"] for row in joined} == {10, 20}

    def test_left_join_fills_none(self):
        left = [{"id": 1}, {"id": 2}]
        right = [{"rid": 1, "y": 10}]
        joined = hash_join(
            left, right, left_key="id", right_key="rid", how="left",
            prefix_right="r_",
        )
        assert len(joined) == 2
        missing = [row for row in joined if row["id"] == 2][0]
        assert missing["r_y"] is None

    def test_left_join_empty_right_keeps_shape_with_hint(self):
        # regression: with an empty right side there are no observed
        # right columns, so unmatched left rows lost their padding
        left = [{"id": 1}, {"id": 2}]
        joined = hash_join(
            left, [], left_key="id", right_key="rid", how="left",
            prefix_right="r_", right_columns=["rid", "y"],
        )
        assert joined == [
            {"id": 1, "r_rid": None, "r_y": None},
            {"id": 2, "r_rid": None, "r_y": None},
        ]

    def test_left_join_ragged_right_with_hint(self):
        left = [{"id": 1}, {"id": 2}]
        right = [{"rid": 1, "y": 10}]
        joined = hash_join(
            left, right, left_key="id", right_key="rid", how="left",
            prefix_right="r_", right_columns=["rid", "y", "z"],
        )
        missing = [row for row in joined if row["id"] == 2][0]
        assert set(missing) == {"id", "r_rid", "r_y", "r_z"}

    def test_prefixes_avoid_collisions(self):
        left = [{"id": 1, "name": "L"}]
        right = [{"id": 1, "name": "R"}]
        joined = hash_join(
            left, right, left_key="id", right_key="id",
            prefix_left="l_", prefix_right="r_",
        )
        assert joined[0]["l_name"] == "L"
        assert joined[0]["r_name"] == "R"

    def test_unhashable_build_keys_fall_back_to_nested_loop(self):
        # regression: list-valued join keys (e.g. tag payloads) crashed
        # the bucket build with a bare TypeError
        left = [{"k": [1, 2], "a": 1}, {"k": 3, "a": 2}]
        right = [{"k": [1, 2], "b": 10}, {"k": [9], "b": 11}, {"k": 3, "b": 12}]
        joined = hash_join(left, right, left_key="k", right_key="k", prefix_right="r_")
        assert len(joined) == 2
        assert {row["r_b"] for row in joined} == {10, 12}

    def test_unhashable_probe_key_matches_linearly(self):
        left = [{"k": [7], "a": 1}]
        right = [{"k": [7], "b": 10}, {"k": 7, "b": 11}]
        joined = hash_join(left, right, left_key="k", right_key="k", prefix_right="r_")
        assert [row["r_b"] for row in joined] == [10]

    def test_none_keys_never_cross_match(self):
        # regression: None build keys shared a bucket, so NULL == NULL
        # rows cross-matched; SQL equi-joins must not match NULL keys
        left = [{"k": None, "a": 1}, {"k": 1, "a": 2}]
        right = [{"k": None, "b": 10}, {"k": 1, "b": 11}]
        inner = hash_join(left, right, left_key="k", right_key="k", prefix_right="r_")
        assert [(row["a"], row["r_b"]) for row in inner] == [(2, 11)]

    def test_none_left_keys_padded_under_left_join(self):
        left = [{"k": None, "a": 1}]
        right = [{"k": None, "b": 10}]
        joined = hash_join(
            left, right, left_key="k", right_key="k", how="left", prefix_right="r_"
        )
        assert joined == [{"k": None, "a": 1, "r_k": None, "r_b": None}]

    def test_bad_how_rejected(self):
        with pytest.raises(QueryError):
            hash_join([], [], left_key="a", right_key="b", how="outer")

    def test_missing_key_raises(self):
        with pytest.raises(UnknownColumnError):
            hash_join([{"id": 1}], [{"y": 1}], left_key="id", right_key="rid")
