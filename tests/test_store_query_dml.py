"""Tests: query-level DML (UPDATE/DELETE WHERE) and DISTINCT."""

import pytest

from repro.store import Eq, Ge, Query
from repro.store.errors import UnknownColumnError


@pytest.fixture()
def filled(resources_table):
    database, table = resources_table
    for index in range(10):
        table.insert(
            {
                "name": f"r{index}",
                "kind": ("url", "image")[index % 2],
                "quality": index / 10.0,
            }
        )
    return database, table


class TestDistinct:
    def test_distinct_values_sorted(self, filled):
        _db, table = filled
        assert Query(table).distinct("kind") == ["image", "url"]

    def test_distinct_respects_where(self, filled):
        _db, table = filled
        assert Query(table).where(Ge("quality", 0.8)).distinct("kind") == [
            "image",
            "url",
        ]
        assert Query(table).where(Ge("quality", 0.9)).distinct("kind") == ["image"]

    def test_unknown_column(self, filled):
        _db, table = filled
        with pytest.raises(UnknownColumnError):
            Query(table).distinct("bogus")


class TestUpdateWhere:
    def test_updates_only_matching(self, filled):
        _db, table = filled
        count = Query(table).where(Eq("kind", "url")).update_rows({"quality": 1.0})
        assert count == 5
        for row in table.scan():
            if row["kind"] == "url":
                assert row["quality"] == 1.0
            else:
                assert row["quality"] < 1.0

    def test_indexes_follow_bulk_update(self, filled):
        _db, table = filled
        Query(table).where(Eq("kind", "url")).update_rows({"kind": "video"})
        assert table.index_for("kind").lookup("url") == set()
        assert len(table.index_for("kind").lookup("video")) == 5
        table.verify_indexes()

    def test_transactional_rollback_of_bulk_update(self, filled):
        database, table = filled
        with pytest.raises(RuntimeError):
            with database.transaction():
                Query(table).where(Eq("kind", "url")).update_rows({"quality": 0.0})
                raise RuntimeError("boom")
        assert Query(table).where(Eq("quality", 0.0)).count() == 1  # only r0


class TestDeleteWhere:
    def test_deletes_only_matching(self, filled):
        _db, table = filled
        count = Query(table).where(Ge("quality", 0.5)).delete_rows()
        assert count == 5
        assert len(table) == 5
        assert Query(table).where(Ge("quality", 0.5)).count() == 0
        table.verify_indexes()

    def test_delete_everything(self, filled):
        _db, table = filled
        assert Query(table).delete_rows() == 10
        assert len(table) == 0

    def test_transactional_rollback_of_bulk_delete(self, filled):
        database, table = filled
        with pytest.raises(RuntimeError):
            with database.transaction():
                Query(table).delete_rows()
                raise RuntimeError("boom")
        assert len(table) == 10
        table.verify_indexes()
