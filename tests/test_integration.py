"""Cross-module integration tests: the paper's headline behaviours.

These run small but complete campaigns and assert the *shape* results
the reproduction stands on (see EXPERIMENTS.md), plus durability of the
system state through the store's WAL.
"""

import numpy as np
import pytest

from repro import (
    AllocationEngine,
    QualityBoard,
    corpus_oracle_quality,
    make_delicious_like,
    make_strategy,
)
from repro.quality import AnalyticGain
from repro.rng import RngRegistry


@pytest.fixture(scope="module")
def arena():
    """One shared dataset family for the ordering tests."""
    data = make_delicious_like(
        n_resources=60, initial_posts_total=600, master_seed=77, population_size=50
    )
    return data


def run_strategy(data, name: str, budget: int = 200, seed: int = 77) -> dict:
    corpus = data.split.provider_corpus.copy()
    targets = data.dataset.oracle_targets()
    gain = (
        AnalyticGain(targets, data.dataset.mean_post_size)
        if name == "optimal"
        else None
    )
    engine = AllocationEngine(
        corpus,
        data.dataset.population,
        make_strategy(name, gain_model=gain),
        budget=budget,
        board=QualityBoard(corpus),
        oracle_targets=targets,
        rng=RngRegistry(seed).stream(f"int.{name}"),
        record_every=budget,
    )
    result = engine.run()
    return {"result": result, "corpus": corpus, "targets": targets}


class TestHeadlineOrdering:
    def test_fc_is_far_from_informed_strategies(self, arena):
        fc = run_strategy(arena, "fc")["result"].oracle_improvement
        hybrid = run_strategy(arena, "fp-mu")["result"].oracle_improvement
        assert hybrid > 2.5 * fc

    def test_informed_strategies_close_to_optimal(self, arena):
        optimal = run_strategy(arena, "optimal")["result"].oracle_improvement
        for name in ("fp", "mu", "fp-mu"):
            improvement = run_strategy(arena, name)["result"].oracle_improvement
            assert improvement > 0.8 * optimal, name

    def test_random_between_fc_and_informed(self, arena):
        fc = run_strategy(arena, "fc")["result"].oracle_improvement
        random_ = run_strategy(arena, "random")["result"].oracle_improvement
        fp = run_strategy(arena, "fp")["result"].oracle_improvement
        assert fc < random_ <= fp * 1.05

    def test_quality_never_degrades_substantially(self, arena):
        for name in ("fc", "fp", "mu", "fp-mu"):
            result = run_strategy(arena, name)["result"]
            assert result.oracle_improvement > -0.01, name

    def test_engine_and_direct_oracle_agree(self, arena):
        run = run_strategy(arena, "fp")
        direct = corpus_oracle_quality(run["corpus"], run["targets"])
        assert run["result"].final_oracle == pytest.approx(direct)


class TestDeterminism:
    @staticmethod
    def _fresh_run(name: str, seed: int):
        # A fresh dataset per run: the tagger population's RNG advances
        # as posts are produced, so determinism is defined over whole
        # (dataset, campaign) runs, not over a shared mutable pool.
        data = make_delicious_like(
            n_resources=30, initial_posts_total=200, master_seed=seed,
            population_size=25,
        )
        return run_strategy(data, name, budget=80, seed=seed)["result"]

    def test_same_seed_same_outcome(self):
        first = self._fresh_run("fp-mu", seed=5)
        second = self._fresh_run("fp-mu", seed=5)
        assert first.allocation == second.allocation
        assert first.final_oracle == pytest.approx(second.final_oracle)

    def test_different_seed_different_posts(self):
        first = self._fresh_run("random", seed=5)
        second = self._fresh_run("random", seed=6)
        assert first.allocation != second.allocation


class TestSystemDurability:
    def test_campaign_state_survives_wal_recovery(self, tmp_path):
        """The Fig.-2 substrate claim: campaign state is recoverable."""
        from repro.datasets import make_delicious_like
        from repro.store import WriteAheadLog
        from repro.system import ITagSystem, build_system_database

        data = make_delicious_like(
            n_resources=10, initial_posts_total=60, master_seed=3,
            population_size=15,
        )
        system = ITagSystem(master_seed=3)
        wal = WriteAheadLog(tmp_path / "itag.wal")
        system.database.attach_wal(wal)
        provider = system.register_provider("alice")
        project = system.create_project(provider, "p", budget=30)
        system.upload_resources(project, data.provider_corpus)
        system.start_project(project, noise_model=data.dataset.noise_model)
        system.run_project(project, tasks=30)
        final_rows = {
            row["id"]: row for row in system.resources.of_project(project)
        }
        final_project = system.projects.get(project)

        recovered = build_system_database()
        WriteAheadLog(tmp_path / "itag.wal").replay_into(recovered)
        recovered_rows = {
            row["id"]: row
            for row in recovered.table("resources").scan()
        }
        assert recovered_rows == final_rows
        assert recovered.table("projects").get(project) == final_project
        recovered.verify()
