"""Unit tests: tag normalization, typo merging, corpus statistics."""

import numpy as np
import pytest

from repro.tagging import (
    TypoMerger,
    edit_distance,
    gini_coefficient,
    normalize_tag,
    posts_histogram,
    summarize_corpus,
    top_k_share,
    vocabulary_growth,
)


class TestNormalizeTag:
    def test_lowercase_strip(self):
        assert normalize_tag("  Machine-Learning! ") == "machine-learning"

    def test_whitespace_collapsed_to_dash(self):
        assert normalize_tag("new   york  city") == "new-york-city"

    def test_stopwords_removed(self):
        assert normalize_tag("THE") is None
        assert normalize_tag("of") is None

    def test_empty_and_punctuation_only(self):
        assert normalize_tag("") is None
        assert normalize_tag("!!!") is None

    def test_non_string(self):
        assert normalize_tag(42) is None  # type: ignore[arg-type]

    def test_custom_stopwords(self):
        assert normalize_tag("the", stopwords=frozenset()) == "the"


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("cat", "cat") == 0

    def test_single_ops(self):
        assert edit_distance("cat", "cats") == 1
        assert edit_distance("cat", "bat") == 1
        assert edit_distance("cat", "at") == 1

    def test_limit_early_exit(self):
        assert edit_distance("short", "completely-different", limit=2) == 3

    def test_symmetric(self):
        assert edit_distance("kitten", "sitting") == edit_distance("sitting", "kitten") == 3


class TestTypoMerger:
    def test_rare_typo_merged_to_frequent(self):
        counts = {"python": 100, "pythn": 1, "java": 50}
        merger = TypoMerger(counts)
        assert merger.apply("pythn") == "python"
        assert merger.apply("java") == "java"

    def test_equal_frequency_not_merged(self):
        counts = {"cat": 10, "car": 10}
        merger = TypoMerger(counts)
        assert merger.apply("cat") == "cat"

    def test_merge_requires_ratio(self):
        counts = {"python": 12, "pythn": 8}
        merger = TypoMerger(counts, merge_ratio=5.0, max_rare_count=10)
        assert merger.apply("pythn") == "pythn"

    def test_prefers_most_frequent_target(self):
        counts = {"cart": 100, "card": 40, "carx": 1}
        merger = TypoMerger(counts)
        assert merger.apply("carx") == "cart"

    def test_apply_all_and_len(self):
        counts = {"tag": 50, "tagg": 1}
        merger = TypoMerger(counts)
        assert merger.apply_all(["tagg", "tag"]) == ["tag", "tag"]
        assert len(merger) == 1

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            TypoMerger({}, merge_ratio=0.5)


class TestStatistics:
    def test_gini_uniform_is_zero(self):
        assert gini_coefficient([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0, abs=1e-9)

    def test_gini_concentrated_near_one(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) > 0.95

    def test_gini_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0.0, 0.0]) == 0.0

    def test_gini_rejects_negative(self):
        with pytest.raises(ValueError):
            gini_coefficient([-1.0, 1.0])

    def test_top_k_share(self):
        values = [1.0] * 90 + [91.0] * 10
        assert top_k_share(values, 0.1) == pytest.approx(910 / 1000)
        with pytest.raises(ValueError):
            top_k_share(values, 0.0)

    def test_posts_histogram_buckets(self, tiny_corpus):
        histogram = posts_histogram(tiny_corpus)
        assert histogram["0"] == 1
        assert histogram["1-4"] == 2

    def test_vocabulary_growth_monotone(self, small_data):
        trajectory = vocabulary_growth(small_data.dataset.corpus)
        seen = [count for _posts, count in trajectory]
        assert all(b >= a for a, b in zip(seen, seen[1:]))
        assert trajectory[-1][0] == small_data.dataset.corpus.total_posts()

    def test_summary_fields(self, small_data):
        summary = summarize_corpus(small_data.dataset.corpus)
        assert summary.n_resources == 30
        assert summary.total_posts == 240
        assert 0.0 <= summary.gini <= 1.0
        assert any("gini" in line for line in summary.lines())

    def test_generated_corpus_is_skewed(self, small_data):
        """The Sec.-I motivation: most posts go to few resources."""
        summary = summarize_corpus(small_data.dataset.corpus)
        assert summary.gini > 0.5
        assert summary.top10_share > 0.3
        assert summary.median_posts < summary.mean_posts
