"""Concurrency suite: snapshot readers vs writers, hierarchical
locking, deadlock handling, group commit under thread load.

The store's contract is two-phase-locked multi-writer / multi-reader:
transactions take intention locks (IS/IX) at table granularity plus
row-granular S/X locks keyed by ``(table, pk)``, so writers run
concurrently when their row footprints are disjoint — even on the
same table; conflicting footprints block, and wait-for cycles abort
the youngest transaction with ``DeadlockError`` (rolled back cleanly,
safe to retry).  A writer crossing the escalation threshold trades
its row locks for one table lock.  Autocommit
writes are safe from any thread, and readers using copy-on-write views
are never torn — a view observes exactly one version of each table
forever.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.store import (
    Column,
    ConstraintError,
    Database,
    DataType,
    DeadlockError,
    Eq,
    Query,
    Schema,
    WriteAheadLog,
)


def make_table(database: Database, name: str = "items"):
    return database.create_table(
        name,
        Schema(
            [
                Column("id", DataType.INT),
                Column("stamp", DataType.INT, default=0, has_default=True),
                Column("label", DataType.TEXT, default="", has_default=True),
            ],
            primary_key="id",
        ),
    )


def run_threads(targets, timeout: float = 30.0) -> None:
    threads = [threading.Thread(target=target) for target in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "thread deadlocked"


class TestSnapshotReaders:
    def test_views_never_torn_by_transactional_writer(self):
        """One writer stamps every row per transaction; view readers
        must always see a single stamp value (all-or-nothing)."""
        database = Database("c")
        table = make_table(database)
        n_rows = 40
        for _ in range(n_rows):
            table.insert({})
        rounds = 150
        errors: list[str] = []
        torn = [0]
        passes = [0]
        done = threading.Event()

        def writer():
            try:
                for stamp in range(1, rounds + 1):
                    with database.transaction():
                        for pk in range(1, n_rows + 1):
                            table.update(pk, {"stamp": stamp})
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer: {exc!r}")
            finally:
                done.set()

        def reader():
            try:
                while True:
                    stopping = done.is_set()
                    view = table.read_view()
                    stamps = {row["stamp"] for row in view.scan()}
                    if len(stamps) > 1:
                        torn[0] += 1
                    # repeatable read: the same view, asked again,
                    # answers the same
                    if {row["stamp"] for row in view.scan()} != stamps:
                        torn[0] += 1
                    if Query(view).count() != n_rows:
                        torn[0] += 1
                    passes[0] += 1
                    if stopping:
                        return
            except Exception as exc:  # noqa: BLE001
                errors.append(f"reader: {exc!r}")

        run_threads([writer, reader, reader])
        assert not errors, errors
        assert torn[0] == 0
        assert passes[0] > 0
        assert {row["stamp"] for row in table.scan()} == {rounds}
        table.verify_indexes()

    def test_view_pins_version_while_live_table_moves(self):
        database = Database("c")
        table = make_table(database)
        for index in range(5):
            table.insert({"label": f"v{index}"})
        view = table.read_view()
        assert not view.stale
        table.update(1, {"label": "mutated"})
        table.delete(2)
        table.insert({"label": "new"})
        assert view.stale
        assert len(view) == 5
        assert view.get(1)["label"] == "v0"
        assert view.contains(2)
        assert len(table) == 5  # 5 - 1 + 1
        assert table.get(1)["label"] == "mutated"

    def test_joined_views_are_mutually_consistent(self):
        database = Database("c")
        left = make_table(database, "left")
        right = database.create_table(
            "right",
            Schema(
                [Column("id", DataType.INT), Column("left_id", DataType.INT)],
                primary_key="id",
            ),
        )
        for index in range(10):
            left.insert({"label": f"L{index}"})
            right.insert({"left_id": index + 1})
        snapshot = database.read_view()
        joined_before = (
            Query(snapshot.table("left"))
            .join(snapshot.table("right"), on=("id", "left_id"), prefix_right="r_")
            .all()
        )
        left.delete(3)
        right.delete(7)
        joined_after = (
            Query(snapshot.table("left"))
            .join(snapshot.table("right"), on=("id", "left_id"), prefix_right="r_")
            .all()
        )
        assert joined_before == joined_after
        assert len(joined_before) == 10

    def test_indexed_reads_never_miss_rows_while_unrelated_columns_update(self):
        """Regression: Table.update used to remove the pk from *every*
        index and re-add it, so an indexed read racing an update of an
        unrelated column could miss committed rows.  Index maintenance
        now touches only changed columns (add-before-remove)."""
        database = Database("c")
        table = make_table(database)
        table.create_index("label", kind="hash")
        n_rows = 300
        for _ in range(n_rows):
            table.insert({"label": "steady"})
        errors: list[str] = []
        misses = [0]
        done = threading.Event()

        def writer():
            try:
                for stamp in range(400):
                    table.update((stamp % n_rows) + 1, {"stamp": stamp})
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer: {exc!r}")
            finally:
                done.set()

        def reader():
            try:
                while True:
                    stopping = done.is_set()
                    if Query(table).where(Eq("label", "steady")).count() != n_rows:
                        misses[0] += 1
                    if stopping:
                        return
            except Exception as exc:  # noqa: BLE001
                errors.append(f"reader: {exc!r}")

        run_threads([writer, reader, reader])
        assert not errors, errors
        assert misses[0] == 0
        table.verify_indexes()

    def test_view_planner_filters_match_live_semantics(self):
        database = Database("c")
        table = make_table(database)
        for index in range(20):
            table.insert({"stamp": index % 4})
        view = table.read_view()
        assert Query(view).where(Eq("stamp", 2)).count() == Query(table).where(
            Eq("stamp", 2)
        ).count()


class TestTransactionSerialization:
    def test_cross_thread_increments_never_lost(self):
        """Three threads bump one counter transactionally.  Their
        footprints overlap, so the lock manager serializes them; an
        S->X upgrade race aborts the younger side with DeadlockError,
        which a retry (fresh transaction) must absorb losslessly."""
        database = Database("c")
        table = make_table(database)
        table.insert({"stamp": 0})
        per_thread = 200

        def bump():
            for _ in range(per_thread):
                attempt = 0
                while True:
                    try:
                        with database.transaction():
                            current = table.get(1)["stamp"]
                            table.update(1, {"stamp": current + 1})
                        break
                    except DeadlockError:
                        attempt += 1
                        time.sleep(0.0001 * attempt)

        run_threads([bump, bump, bump])
        assert table.get(1)["stamp"] == 3 * per_thread
        database.verify()

    def test_rollback_completes_before_transaction_slot_is_released(self):
        """Regression: rollback used to release the transaction mutex
        *before* replaying the undo log, so a concurrent ``read_view``
        (or ``begin()``) could observe aborted changes mid-undo.  Every
        undo application must happen while the transaction is still
        registered."""
        database = Database("c")
        table = make_table(database)
        table.insert({"stamp": 1})
        seen_in_txn: list[bool] = []

        def spy(event):
            seen_in_txn.append(database.in_transaction)

        table.add_listener(spy)
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.insert({"stamp": 2})
                table.update(1, {"stamp": 99})
                raise RuntimeError("abort")
        table.remove_listener(spy)
        # 2 forward changes + 2 undo applications, all inside the txn slot
        assert len(seen_in_txn) == 4
        assert all(seen_in_txn)
        assert table.get(1)["stamp"] == 1
        assert len(table) == 1

    def test_same_thread_nested_transaction_still_rejected(self):
        from repro.store import TransactionError

        database = Database("c")
        make_table(database)
        with database.transaction():
            with pytest.raises(TransactionError, match="nested"):
                database.transaction().begin()


class TestPerTableLocking:
    def test_disjoint_footprints_run_concurrently(self):
        """Two transactions on different tables must both be open at
        the same moment — proven by a cross-signal: each thread waits,
        inside its transaction, for the other to enter its own."""
        database = Database("c")
        left = make_table(database, "left")
        right = make_table(database, "right")
        a_in = threading.Event()
        b_in = threading.Event()
        overlapped = []

        def writer_a():
            with database.transaction():
                left.insert({"stamp": 1})
                a_in.set()
                overlapped.append(b_in.wait(timeout=10.0))

        def writer_b():
            with database.transaction():
                right.insert({"stamp": 2})
                b_in.set()
                overlapped.append(a_in.wait(timeout=10.0))

        run_threads([writer_a, writer_b])
        assert overlapped == [True, True]
        assert len(left) == 1 and len(right) == 1
        database.verify()

    def test_opposite_lock_order_deadlock_aborts_one_commits_other(self):
        """The injection from the paper-book: two transactions acquire
        the same two tables in opposite order, rendezvous after their
        first lock, then cross.  The wait-for graph must abort exactly
        one with DeadlockError (not hang, not abort both); the survivor
        commits and the aborted side rolls back cleanly."""
        database = Database("c", lock_timeout=30.0)
        left = make_table(database, "left")
        right = make_table(database, "right")
        left.insert({"stamp": 0})
        right.insert({"stamp": 0})
        rendezvous = threading.Barrier(2, timeout=10.0)
        outcomes: list[str] = []
        outcome_lock = threading.Lock()

        def crossed(first, second):
            def run():
                try:
                    with database.transaction():
                        first.update(1, {"stamp": 1})
                        rendezvous.wait()
                        second.update(1, {"stamp": 1})
                    with outcome_lock:
                        outcomes.append("committed")
                except DeadlockError:
                    with outcome_lock:
                        outcomes.append("aborted")
            return run

        run_threads([crossed(left, right), crossed(right, left)])
        assert sorted(outcomes) == ["aborted", "committed"]
        # the aborted side rolled back: exactly one table kept the
        # survivor's write on the row it reached second
        assert {left.get(1)["stamp"], right.get(1)["stamp"]} == {1}
        database.verify()

    def test_deadlock_victim_is_younger_transaction(self):
        database = Database("c", lock_timeout=30.0)
        left = make_table(database, "left")
        right = make_table(database, "right")
        left.insert({})
        right.insert({})
        older_in = threading.Event()
        younger_in = threading.Event()
        results: dict[str, str] = {}

        def older():
            with database.transaction():
                left.update(1, {"stamp": 1})
                older_in.set()
                assert younger_in.wait(timeout=10.0)
                right.update(1, {"stamp": 1})
            results["older"] = "committed"

        def younger():
            assert older_in.wait(timeout=10.0)
            try:
                with database.transaction():
                    right.update(1, {"stamp": 2})
                    younger_in.set()
                    left.update(1, {"stamp": 2})
                results["younger"] = "committed"
            except DeadlockError:
                results["younger"] = "aborted"

        run_threads([older, younger])
        assert results == {"older": "committed", "younger": "aborted"}
        assert left.get(1)["stamp"] == 1 and right.get(1)["stamp"] == 1
        database.verify()

    def test_lock_timeout_fallback_raises_deadlock_error(self):
        """A lock that simply never frees (held by a foreign owner the
        cycle detector cannot see through) must fall back to the
        configured timeout instead of waiting forever."""
        database = Database("c", lock_timeout=0.2)
        make_table(database)
        database.lock_manager.acquire(999_999, "items", "X")
        try:
            with pytest.raises(DeadlockError, match="lock wait timeout"):
                with database.transaction():
                    database.table("items").insert({})
        finally:
            database.lock_manager.release_all(999_999)
        database.verify()

    def test_verify_flags_leaked_locks_at_quiescence(self):
        database = Database("c")
        make_table(database)
        database.verify()  # clean before
        database.lock_manager.acquire(999_999, "items", "S")
        with pytest.raises(ConstraintError, match="lock"):
            database.verify()
        database.lock_manager.release_all(999_999)
        database.verify()  # release is idempotent and drains fully


class TestRowLevelLocking:
    def test_disjoint_rows_of_one_table_run_concurrently(self):
        """Two transactions writing different rows of the *same* table
        must both be open at the same moment — the point of the
        IS/IX + row-lock hierarchy.  Proven by a cross-signal, as in
        the disjoint-tables test above."""
        database = Database("c")
        table = make_table(database)
        table.insert({})
        table.insert({})
        a_in = threading.Event()
        b_in = threading.Event()
        overlapped = []

        def writer_a():
            with database.transaction():
                table.update(1, {"stamp": 1})
                a_in.set()
                overlapped.append(b_in.wait(timeout=10.0))

        def writer_b():
            with database.transaction():
                table.update(2, {"stamp": 2})
                b_in.set()
                overlapped.append(a_in.wait(timeout=10.0))

        run_threads([writer_a, writer_b])
        assert overlapped == [True, True]
        assert table.get(1)["stamp"] == 1 and table.get(2)["stamp"] == 2
        database.verify()

    def test_escalation_threshold_crossing_folds_row_locks(self):
        """A bulk writer crossing the escalation threshold trades its
        row locks for one table X lock; row locks the table lock now
        covers are dropped, and later row acquires are satisfied by
        the covering lock without new entries."""
        database = Database("c")
        database.lock_manager.escalation_threshold = 8
        table = make_table(database)
        for _ in range(20):
            table.insert({})
        with database.transaction():
            for pk in range(1, 21):
                table.update(pk, {"stamp": 1})
            stats = database.lock_manager.stats()
            assert stats["escalations"] == 1
            assert stats["row_locks_held"] == 0
            assert stats["table_locks_held"] == 1
        after = database.lock_manager.stats()
        assert after["locks_held"] == 0
        assert after["escalations"] == 1
        database.verify()

    def test_escalation_induced_deadlock_aborts_younger_writer(self):
        """Escalation re-runs deadlock detection over the widened
        footprint: an older bulk writer escalating to table X while a
        younger writer holds IX (and then waits on one of the older
        writer's rows) forms a cycle; the younger side must abort."""
        database = Database("c", lock_timeout=30.0)
        database.lock_manager.escalation_threshold = 3
        table = make_table(database)
        for _ in range(10):
            table.insert({})
        older_in = threading.Event()
        younger_in = threading.Event()
        results: dict[str, str] = {}

        def older():
            with database.transaction():
                table.update(1, {"stamp": 1})
                table.update(2, {"stamp": 1})
                older_in.set()
                assert younger_in.wait(timeout=10.0)
                # rows 3 and 4 cross the threshold -> escalate to
                # table X, which blocks on the younger writer's IX
                table.update(3, {"stamp": 1})
                table.update(4, {"stamp": 1})
            results["older"] = "committed"

        def younger():
            assert older_in.wait(timeout=10.0)
            try:
                with database.transaction():
                    table.update(9, {"stamp": 2})
                    younger_in.set()
                    table.update(1, {"stamp": 2})
                results["younger"] = "committed"
            except DeadlockError:
                results["younger"] = "aborted"

        run_threads([older, younger])
        assert results == {"older": "committed", "younger": "aborted"}
        assert table.get(1)["stamp"] == 1
        assert table.get(9)["stamp"] == 0  # younger rolled back
        stats = database.lock_manager.stats()
        assert stats["escalations"] >= 1
        assert stats["victims"] >= 1
        database.verify()

    def test_verify_flags_leaked_row_lock(self):
        database = Database("c")
        make_table(database)
        database.verify()  # clean before
        database.lock_manager.acquire_row(4242, "items", 1, "X")
        with pytest.raises(ConstraintError, match="lock"):
            database.verify()
        database.lock_manager.release_all(4242)
        database.verify()  # release drains the row level too


class TestGroupCommit:
    def test_concurrent_autocommit_inserts_all_journaled(self, tmp_path):
        database = Database("c")
        table = make_table(database)
        wal = WriteAheadLog(tmp_path / "c.wal", fsync="never")
        database.attach_wal(wal)
        per_thread = 100

        def insert_block(base: int):
            def run():
                for offset in range(per_thread):
                    table.insert({"id": base + offset, "label": f"t{base}"})
            return run

        run_threads([insert_block(1_000), insert_block(2_000), insert_block(3_000)])
        database.close()
        replayed = Database("c2")
        make_table(replayed)
        reopened = WriteAheadLog(tmp_path / "c.wal")
        assert len(reopened) == 3 * per_thread
        reopened.replay_into(replayed)
        assert len(replayed.table("items")) == 3 * per_thread
        replayed.verify()

    def test_fsync_always_groups_concurrent_commits(self, tmp_path):
        database = Database("c")
        table = make_table(database)
        wal = WriteAheadLog(tmp_path / "c.wal", fsync="always")
        database.attach_wal(wal)
        per_thread = 25

        def insert_block(base: int):
            def run():
                for offset in range(per_thread):
                    table.insert({"id": base + offset})
            return run

        run_threads([insert_block(1_000), insert_block(2_000), insert_block(3_000)])
        assert len(wal) == 3 * per_thread
        # every record was fsynced before its commit returned, but one
        # group fsync may cover several concurrent committers
        assert 1 <= wal.sync_count <= 3 * per_thread
        database.close()


class TestPlanCacheThreadSafety:
    def test_queries_race_index_ddl_without_crashing(self):
        database = Database("c")
        table = make_table(database)
        for index in range(200):
            table.insert({"stamp": index % 10})
        errors: list[str] = []
        done = threading.Event()

        def query_loop():
            try:
                while not done.is_set():
                    assert Query(table).where(Eq("stamp", 3)).count() == 20
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))

        def ddl_loop():
            try:
                for _ in range(30):
                    table.create_index("stamp", kind="hash")
                    table.drop_index("stamp")
            except Exception as exc:  # noqa: BLE001
                errors.append(repr(exc))
            finally:
                done.set()

        run_threads([query_loop, query_loop, ddl_loop])
        assert not errors, errors


class TestConcurrentStress:
    """Randomized multi-writer schedules vs a single-threaded oracle."""

    @given(
        plans=st.lists(
            st.lists(
                st.sampled_from([0, 1, 2]), min_size=1, max_size=3, unique=True
            ),
            min_size=2,
            max_size=4,
        ),
        per_thread=st.integers(min_value=3, max_value=10),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_threaded_increments_match_single_threaded_oracle(
        self, plans, per_thread
    ):
        """Each thread owns a random table subset (disjoint or
        overlapping, in arbitrary acquisition order) and increments
        every table in its set inside one transaction per round,
        retrying deadlock aborts.  The final counters must equal the
        single-threaded oracle: no lost updates, no double-applies
        from rollback+retry."""
        database = Database("stress")
        tables = [make_table(database, f"t{index}") for index in range(3)]
        for table in tables:
            table.insert({"stamp": 0})
        errors: list[str] = []

        def worker(plan):
            def run():
                try:
                    for _ in range(per_thread):
                        attempt = 0
                        while True:
                            try:
                                with database.transaction():
                                    for slot in plan:
                                        table = tables[slot]
                                        current = table.get(1)["stamp"]
                                        table.update(
                                            1, {"stamp": current + 1}
                                        )
                                break
                            except DeadlockError:
                                attempt += 1
                                time.sleep(0.0001 * attempt)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
            return run

        run_threads([worker(plan) for plan in plans])
        assert not errors, errors
        expected = {
            slot: per_thread * sum(1 for plan in plans if slot in plan)
            for slot in range(3)
        }
        actual = {
            slot: tables[slot].get(1)["stamp"] for slot in range(3)
        }
        assert actual == expected
        database.verify()


class TestRowStress:
    """Randomized same-table multi-writer schedules vs a
    single-threaded oracle — the row-granular analogue of
    :class:`TestConcurrentStress`."""

    @given(
        plans=st.lists(
            st.lists(
                st.sampled_from(range(6)), min_size=1, max_size=4, unique=True
            ),
            min_size=2,
            max_size=4,
        ),
        per_thread=st.integers(min_value=3, max_value=10),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_threaded_row_increments_match_single_threaded_oracle(
        self, plans, per_thread
    ):
        """Each thread owns a random pk subset of ONE table — disjoint
        or overlapping, in arbitrary acquisition order — and increments
        every row in its set inside one transaction per round, retrying
        deadlock aborts.  Disjoint subsets proceed under row locks;
        overlapping ones serialize or abort-and-retry.  The final
        counters must equal the single-threaded oracle: no lost
        updates, no double-applies from rollback+retry."""
        database = Database("stress")
        table = make_table(database)
        for _ in range(6):
            table.insert({"stamp": 0})
        errors: list[str] = []

        def worker(plan):
            def run():
                try:
                    for _ in range(per_thread):
                        attempt = 0
                        while True:
                            try:
                                with database.transaction():
                                    for slot in plan:
                                        pk = slot + 1
                                        current = table.get(pk)["stamp"]
                                        table.update(
                                            pk, {"stamp": current + 1}
                                        )
                                break
                            except DeadlockError:
                                attempt += 1
                                time.sleep(0.0001 * attempt)
                except Exception as exc:  # noqa: BLE001
                    errors.append(repr(exc))
            return run

        run_threads([worker(plan) for plan in plans])
        assert not errors, errors
        expected = {
            slot: per_thread * sum(1 for plan in plans if slot in plan)
            for slot in range(6)
        }
        actual = {slot: table.get(slot + 1)["stamp"] for slot in range(6)}
        assert actual == expected
        database.verify()


class TestSessionDriver:
    def test_concurrent_tagger_sessions_stay_consistent(self):
        from repro.datasets import make_delicious_like
        from repro.system import ITagSystem, SessionDriver

        data = make_delicious_like(
            n_resources=8, initial_posts_total=40, master_seed=5, population_size=12
        )
        system = ITagSystem(master_seed=5)
        provider = system.register_provider("p")
        project = system.create_project(provider, "campaign", budget=90)
        system.upload_resources(project, data.provider_corpus)
        system.start_project(project, noise_model=data.dataset.noise_model)
        report = SessionDriver(
            system, project, readers=2, writer_tasks=25
        ).run()
        assert report.consistent, report.describe()
        assert report.writer_tasks == 25
        assert report.reader_passes > 0

    def test_multi_writer_sessions_split_the_task_pool(self):
        from repro.datasets import make_delicious_like
        from repro.system import ITagSystem, SessionDriver

        data = make_delicious_like(
            n_resources=8, initial_posts_total=40, master_seed=7, population_size=12
        )
        system = ITagSystem(master_seed=7)
        provider = system.register_provider("p")
        project = system.create_project(provider, "campaign", budget=90)
        system.upload_resources(project, data.provider_corpus)
        system.start_project(project, noise_model=data.dataset.noise_model)
        report = SessionDriver(
            system, project, readers=2, writer_tasks=30, writers=3
        ).run()
        assert report.consistent, report.describe()
        assert report.writers == 3
        assert len(report.writer_sessions) == 3
        # the shared pool drains exactly once across the racing writers
        assert sum(s.commits for s in report.writer_sessions) == report.writer_tasks
        assert report.writer_tasks <= 30
        system.database.verify()
