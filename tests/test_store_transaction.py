"""Unit tests: transaction atomicity and lifecycle."""

import pytest

from repro.store import TransactionError


class TestCommitRollback:
    def test_commit_keeps_changes(self, resources_table):
        database, table = resources_table
        with database.transaction():
            table.insert({"name": "a", "kind": "url"})
        assert len(table) == 1

    def test_rollback_on_exception(self, resources_table):
        database, table = resources_table
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.insert({"name": "a", "kind": "url"})
                raise RuntimeError("boom")
        assert len(table) == 0

    def test_rollback_restores_updates(self, resources_table):
        database, table = resources_table
        pk = table.insert({"name": "a", "kind": "url", "quality": 0.1})
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.update(pk, {"quality": 0.9})
                table.update(pk, {"kind": "image"})
                raise RuntimeError("boom")
        row = table.get(pk)
        assert row["quality"] == 0.1
        assert row["kind"] == "url"

    def test_rollback_restores_deletes(self, resources_table):
        database, table = resources_table
        pk = table.insert({"name": "a", "kind": "url"})
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.delete(pk)
                raise RuntimeError("boom")
        assert table.get(pk)["name"] == "a"

    def test_rollback_mixed_ops_in_reverse_order(self, resources_table):
        database, table = resources_table
        pk_a = table.insert({"name": "a", "kind": "url", "quality": 0.3})
        with pytest.raises(RuntimeError):
            with database.transaction():
                pk_b = table.insert({"name": "b", "kind": "url"})
                table.update(pk_a, {"quality": 0.7})
                table.delete(pk_b)
                table.delete(pk_a)
                raise RuntimeError("boom")
        assert len(table) == 1
        assert table.get(pk_a)["quality"] == 0.3

    def test_rollback_restores_indexes(self, resources_table):
        database, table = resources_table
        pk = table.insert({"name": "a", "kind": "url"})
        with pytest.raises(RuntimeError):
            with database.transaction():
                table.update(pk, {"kind": "image"})
                raise RuntimeError("boom")
        assert table.index_for("kind").lookup("url") == {pk}
        assert table.index_for("kind").lookup("image") == set()
        table.verify_indexes()

    def test_explicit_commit(self, resources_table):
        database, table = resources_table
        txn = database.transaction().begin()
        table.insert({"name": "a", "kind": "url"})
        txn.commit()
        assert len(table) == 1

    def test_explicit_rollback(self, resources_table):
        database, table = resources_table
        txn = database.transaction().begin()
        table.insert({"name": "a", "kind": "url"})
        txn.rollback()
        assert len(table) == 0


class TestLifecycle:
    def test_nested_transactions_rejected(self, resources_table):
        database, _table = resources_table
        with database.transaction():
            with pytest.raises(TransactionError, match="nested"):
                database.transaction().begin()

    def test_double_begin_rejected(self, resources_table):
        database, _table = resources_table
        txn = database.transaction().begin()
        with pytest.raises(TransactionError):
            txn.begin()
        txn.rollback()

    def test_commit_without_begin_rejected(self, resources_table):
        database, _table = resources_table
        with pytest.raises(TransactionError):
            database.transaction().commit()

    def test_reuse_after_commit_rejected(self, resources_table):
        database, _table = resources_table
        txn = database.transaction().begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.begin()

    def test_in_transaction_flag(self, resources_table):
        database, _table = resources_table
        assert not database.in_transaction
        with database.transaction():
            assert database.in_transaction
        assert not database.in_transaction

    def test_changes_outside_transaction_are_autocommit(self, resources_table):
        database, table = resources_table
        table.insert({"name": "a", "kind": "url"})
        assert len(table) == 1
