"""Unit tests: the itag CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["version"]).command == "version"
        args = parser.parse_args(["run-experiment", "EXP-T1", "--fast"])
        assert args.experiment_id == "EXP-T1"
        assert args.fast


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        assert "repro" in capsys.readouterr().out

    def test_list_experiments(self, capsys):
        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        assert "EXP-T1" in out
        assert "EXP-UI" in out

    def test_run_experiment_fast_with_save(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        code = main(["run-experiment", "EXP-ST", "--fast", "--save", str(path)])
        assert code == 0
        assert path.exists()
        assert "EXP-ST" in capsys.readouterr().out

    def test_run_unknown_experiment_exits_2(self, capsys):
        assert main(["run-experiment", "EXP-NOPE"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_store_explain_indexed_predicates(self, capsys):
        code = main(
            [
                "store", "explain", "resources",
                "--where", "project_id=3",
                "--where", "quality>=0.5",
                "--rows", "200",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hash-index(resources.project_id=3" in out
        assert "[plan-cache:" in out

    def test_store_explain_order_and_limit_streams_topk(self, capsys):
        code = main(
            [
                "store", "explain", "resources",
                "--order-by", "quality", "--descending", "--limit", "5",
                "--rows", "100",
            ]
        )
        assert code == 0
        assert "top-k(resources.quality desc" in capsys.readouterr().out

    def test_store_explain_join_shows_strategy(self, capsys):
        code = main(
            [
                "store", "explain", "resources",
                "--where", "project_id=3",
                "--join", "posts", "--on", "id=resource_id",
                "--rows", "200",
            ]
        )
        assert code == 0
        assert "index-nl-join(resources.id = posts.resource_id" in capsys.readouterr().out

    def test_store_explain_chained_joins_show_planned_order(self, capsys):
        code = main(
            [
                "store", "explain", "projects",
                "--where", "state=name-3",
                "--join", "users", "--on", "provider_id=id",
                "--join", "tasks", "--on", "id=project_id",
                "--rows", "300",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # the planner chose its own order (tasks narrows before users)
        assert "[join-order: projects -> tasks -> users (dp)]" in out
        assert "[plan-cache:" in out

    def test_store_explain_rejects_unknown_inputs(self, capsys):
        assert main(["store", "explain", "nope"]) == 2
        assert main(["store", "explain", "resources", "--where", "bogus=1"]) == 2
        assert main(["store", "explain", "resources", "--where", "quality?1"]) == 2
        assert (
            main(["store", "explain", "resources", "--join", "posts"]) == 2
        )  # missing --on
        assert (
            main([
                "store", "explain", "resources",
                "--join", "posts", "--on", "id=resource_id",
                "--join", "tasks",
            ]) == 2
        )  # second join lacks its --on
        capsys.readouterr()

    def _make_state_dir(self, tmp_path, torn: bool = False):
        from repro.store import Column, Database, DataType, Schema

        state = tmp_path / "state"
        database = Database.open(state, fsync="never")
        table = database.create_table(
            "items",
            Schema(
                [Column("id", DataType.INT), Column("v", DataType.TEXT)],
                primary_key="id",
            ),
        )
        for index in range(6):
            table.insert({"v": f"v{index}"})
        database.close()
        if torn:
            # the log is a segment directory; a torn tail lives at the
            # end of the active (highest-numbered) segment
            active = sorted((state / "wal.log").glob("wal-*.log"))[-1]
            with active.open("ab") as handle:
                handle.write(b'00000000 {"lsn": 999, "txn": [')
        return state

    def test_store_recover_reports_clean_state(self, tmp_path, capsys):
        state = self._make_state_dir(tmp_path)
        assert main(["store", "recover", "--dir", str(state)]) == 0
        out = capsys.readouterr().out
        assert "replayed 7 committed records" in out  # 1 DDL + 6 inserts
        assert "torn tail: none" in out
        assert "verify: ok" in out

    def test_store_recover_discards_torn_tail(self, tmp_path, capsys):
        state = self._make_state_dir(tmp_path, torn=True)
        assert main(["store", "recover", "--dir", str(state)]) == 0
        out = capsys.readouterr().out
        assert "discarded torn tail" in out
        assert "'items': 6" in out
        assert "verify: ok" in out

    def test_store_checkpoint_prunes_wal(self, tmp_path, capsys):
        state = self._make_state_dir(tmp_path)
        assert main(["store", "checkpoint", "--dir", str(state), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint written: checkpoint-000001.manifest.json" in out
        # the first generation retains the full suffix (fallback safety)
        assert "7 -> 7" in out
        assert "kind: incremental (generation 1" in out
        assert "tables: 1 rewritten, 0 reused of 1" in out
        # recovery loads the checkpoint and replays nothing
        assert main(["store", "recover", "--dir", str(state)]) == 0
        out = capsys.readouterr().out
        assert "replayed 0 committed records" in out
        # a second generation prunes what the first one covers; the
        # untouched table is reused, not rewritten
        assert main(["store", "checkpoint", "--dir", str(state), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "checkpoint written: checkpoint-000002.manifest.json" in out
        assert "7 -> 0" in out
        assert "tables: 0 rewritten, 1 reused of 1" in out

    def test_store_checkpoint_full_writes_legacy_snapshot(self, tmp_path, capsys):
        state = self._make_state_dir(tmp_path)
        assert main(
            ["store", "checkpoint", "--dir", str(state), "--full", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpoint written: checkpoint-000001.json" in out
        assert "kind: full (generation 1" in out
        assert main(["store", "recover", "--dir", str(state)]) == 0
        out = capsys.readouterr().out
        assert "(full, wal_lsn 7)" in out
        assert "verify: ok" in out

    def test_store_smoke_durable_reports_checkpoint(self, capsys):
        assert main(
            ["store", "smoke", "--readers", "1", "--tasks", "5", "--durable"]
        ) == 0
        out = capsys.readouterr().out
        assert "verdict: consistent" in out
        assert "durability: checkpoint gen 1 (incremental)" in out
        assert "segment(s) live" in out

    def test_store_smoke_is_consistent(self, capsys):
        assert main(["store", "smoke", "--readers", "2", "--tasks", "15"]) == 0
        out = capsys.readouterr().out
        assert "torn reads: 0" in out
        assert "verdict: consistent" in out

    def test_generate_dataset_report(self, tmp_path, capsys):
        out = tmp_path / "corpus.json"
        code = main(
            [
                "generate-dataset",
                "--resources", "10",
                "--posts", "40",
                "--seed", "3",
                "--report",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "gini" in captured
        assert "saved:" in captured

    def test_demo_runs(self, capsys):
        assert main(["demo", "--seed", "11"]) == 0
        assert "EXP-UI" in capsys.readouterr().out
