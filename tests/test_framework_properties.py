"""Property-based tests: Algorithm-1 engine invariants under random
provider-control sequences (promote/stop/resume/add-budget/switch/step).

Invariants:
- budget conservation: Σ x_i == budget_spent <= budget_total, always;
- stopped resources receive no tasks while stopped;
- the corpus gains exactly one post per executed task;
- the engine never crashes while at least one resource stays eligible.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.datasets import make_delicious_like
from repro.quality import QualityBoard
from repro.strategies import (
    AllocationEngine,
    FewestPostsFirst,
    MostUnstableFirst,
    UniformRandom,
)

_ops = st.lists(
    st.tuples(
        st.sampled_from(["step", "promote", "stop", "resume", "add_budget", "switch"]),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=30,
)

_DATA = make_delicious_like(
    n_resources=10, initial_posts_total=60, master_seed=99, population_size=10
)


def _build_engine() -> AllocationEngine:
    corpus = _DATA.split.provider_corpus.copy()
    return AllocationEngine(
        corpus,
        _DATA.dataset.population,
        FewestPostsFirst(),
        budget=40,
        board=QualityBoard(corpus),
        rng=np.random.default_rng(0),
        record_every=10,
    )


@given(_ops)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_engine_invariants_under_any_control_sequence(ops):
    engine = _build_engine()
    corpus = engine.corpus
    ids = corpus.resource_ids()
    posts_before = corpus.total_posts()
    stopped: set[int] = set()
    stopped_alloc_at_stop: dict[int, int] = {}
    executed = []
    engine.on_task(lambda rid, _spent: executed.append(rid))
    strategies = [MostUnstableFirst(), UniformRandom(), FewestPostsFirst()]
    for op, argument in ops:
        resource_id = ids[argument % len(ids)]
        if op == "step":
            engine.step(1 + argument % 3)
        elif op == "promote":
            engine.promote(resource_id)
            stopped.discard(resource_id)
        elif op == "stop":
            if len(stopped) < len(ids) - 1:  # keep one eligible
                engine.stop(resource_id)
                if resource_id not in stopped:
                    stopped.add(resource_id)
                    stopped_alloc_at_stop[resource_id] = engine._allocation[resource_id]
        elif op == "resume":
            engine.resume(resource_id)
            stopped.discard(resource_id)
        elif op == "add_budget":
            engine.add_budget(argument)
        else:
            engine.switch_strategy(strategies[argument % len(strategies)])
        # Invariant: allocation of currently-stopped resources is frozen.
        for frozen_id in stopped:
            assert engine._allocation[frozen_id] == stopped_alloc_at_stop[frozen_id]
        # Invariant: budget books balance at every point.
        assert sum(engine._allocation.values()) == engine._budget_spent
        assert engine._budget_spent <= engine._budget_total
    # Invariant: every executed task added exactly one post.
    assert corpus.total_posts() == posts_before + len(executed)
    assert len(executed) == engine._budget_spent


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=20, deadline=None)
def test_run_spends_exactly_min_of_budget_and_available(budget):
    corpus = _DATA.split.provider_corpus.copy()
    engine = AllocationEngine(
        corpus,
        _DATA.dataset.population,
        UniformRandom(),
        budget=budget,
        board=QualityBoard(corpus),
        rng=np.random.default_rng(1),
    )
    result = engine.run()
    assert result.budget_spent == budget
    assert sum(result.allocation.values()) == budget
