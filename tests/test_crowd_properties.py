"""Property-based tests: ledger conservation under arbitrary histories."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd import PaymentLedger
from repro.errors import LedgerError

# Operations: (kind, provider, worker, amount-in-cents, fee-percent)
_ops = st.lists(
    st.tuples(
        st.sampled_from(["deposit", "pay", "refund"]),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=100, max_value=105),
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=0, max_value=40),
    ),
    min_size=1,
    max_size=60,
)


@given(_ops)
@settings(max_examples=80, deadline=None)
def test_ledger_conserves_money_under_any_history(ops):
    """Σ deposits == escrow + worker balances + fees + refunds, always."""
    ledger = PaymentLedger()
    for kind, provider, worker, cents, fee_percent in ops:
        amount = cents / 100.0
        try:
            if kind == "deposit":
                ledger.deposit(provider, amount)
            elif kind == "pay":
                ledger.pay_task(
                    provider, worker, 0, amount, fee_rate=fee_percent / 100.0
                )
            else:
                ledger.refund(provider, amount)
        except LedgerError:
            pass  # overdrafts are rejected, never partially applied
        ledger.verify_conservation()


@given(_ops)
@settings(max_examples=40, deadline=None)
def test_ledger_balances_never_negative(ops):
    ledger = PaymentLedger()
    for kind, provider, worker, cents, fee_percent in ops:
        amount = cents / 100.0
        try:
            if kind == "deposit":
                ledger.deposit(provider, amount)
            elif kind == "pay":
                ledger.pay_task(
                    provider, worker, 0, amount, fee_rate=fee_percent / 100.0
                )
            else:
                ledger.refund(provider, amount)
        except LedgerError:
            pass
    assert all(balance >= -1e-9 for balance in ledger.escrow.values())
    assert all(balance >= 0 for balance in ledger.worker_balance.values())
    assert ledger.platform_fees >= 0
