"""Integration tests: the ITagSystem facade end-to-end (Sec. III)."""

import pytest

from repro.datasets import make_delicious_like
from repro.errors import ProjectError
from repro.system import ITagSystem, export_project_csv, export_project_json


@pytest.fixture()
def campaign():
    data = make_delicious_like(
        n_resources=15, initial_posts_total=100, master_seed=11, population_size=25
    )
    system = ITagSystem(master_seed=11)
    provider = system.register_provider("alice")
    project = system.create_project(
        provider, "urls", budget=60, pay_per_task=0.05,
        strategy="fp-mu", platform="mturk",
    )
    system.upload_resources(project, data.provider_corpus)
    system.start_project(project, noise_model=data.dataset.noise_model)
    return data, system, provider, project


class TestCampaignFlow:
    def test_run_spends_budget_and_updates_rows(self, campaign):
        data, system, _provider, project = campaign
        initial_posts = sum(
            row["n_posts"] for row in system.resources.of_project(project)
        )
        assert initial_posts == data.split.provider_post_count
        outcomes = system.run_project(project, tasks=30)
        assert len(outcomes) == 30
        status = system.project_status(project)
        assert status["budget_spent"] == 30
        assert status["state"] == "running"
        total_row_posts = sum(
            row["n_posts"] for row in system.resources.of_project(project)
        )
        approved = sum(1 for outcome in outcomes if outcome.approved)
        assert total_row_posts == initial_posts + approved

    def test_completion_refunds_escrow(self, campaign):
        _data, system, provider, project = campaign
        system.run_project(project)
        status = system.project_status(project)
        assert status["state"] == "completed"
        assert status["budget_spent"] == 60
        assert system.ledger.escrow_of(provider) == pytest.approx(0.0)
        system.ledger.verify_conservation()

    def test_rejected_posts_do_not_pay(self, campaign):
        _data, system, provider, project = campaign
        outcomes = system.run_project(project, tasks=60)
        rejected = [outcome for outcome in outcomes if not outcome.approved]
        paid = sum(system.ledger.worker_balance.values())
        approved = [outcome for outcome in outcomes if outcome.approved]
        assert paid == pytest.approx(len(approved) * 0.05)
        # Rejected workers got nothing for those tasks.
        if rejected:
            assert len(approved) < len(outcomes)

    def test_quality_improves_over_campaign(self, campaign):
        _data, system, _provider, project = campaign
        before = system.projects.get(project)["avg_quality"]
        system.run_project(project)
        after = system.projects.get(project)["avg_quality"]
        assert after > before

    def test_run_requires_running_state(self, campaign):
        _data, system, _provider, project = campaign
        system.pause_project(project)
        with pytest.raises(ProjectError, match="not running"):
            system.run_project(project, tasks=1)
        system.resume_project(project)
        assert len(system.run_project(project, tasks=1)) == 1

    def test_stop_project_refunds(self, campaign):
        _data, system, provider, project = campaign
        system.run_project(project, tasks=10)
        refund = system.stop_project(project)
        assert refund > 0
        assert system.project_status(project)["state"] == "stopped"
        system.ledger.verify_conservation()
        with pytest.raises(ProjectError):
            system.run_project(project, tasks=1)


class TestProviderControls:
    def test_promote_and_stop(self, campaign):
        data, system, _provider, project = campaign
        ids = data.provider_corpus.resource_ids()
        system.promote_resource(project, ids[3])
        system.stop_resource(project, ids[5])
        outcomes = system.run_project(project, tasks=10)
        assert outcomes[0].resource_id == ids[3]
        assert all(outcome.resource_id != ids[5] for outcome in outcomes)
        assert system.resources.get(ids[3])["promoted"] is True
        assert system.resources.get(ids[5])["stopped"] is True
        system.resume_resource(project, ids[5])
        assert system.resources.get(ids[5])["stopped"] is False

    def test_switch_strategy_persists(self, campaign):
        _data, system, _provider, project = campaign
        system.switch_strategy(project, "mu")
        assert system.projects.get(project)["strategy"] == "mu"
        system.run_project(project, tasks=5)

    def test_add_budget_funds_escrow(self, campaign):
        _data, system, provider, project = campaign
        escrow_before = system.ledger.escrow_of(provider)
        system.add_budget(project, 10)
        assert system.projects.get(project)["budget_total"] == 70
        assert system.ledger.escrow_of(provider) > escrow_before

    def test_upload_twice_rejected(self, campaign):
        data, system, _provider, project = campaign
        with pytest.raises(ProjectError, match="can only be uploaded in"):
            system.upload_resources(project, data.provider_corpus.copy())

    def test_cross_project_id_collision_rejected(self, campaign):
        from repro.errors import ResourceNotFoundError

        data, system, provider, _project = campaign
        second = system.create_project(provider, "again", budget=5)
        with pytest.raises(ResourceNotFoundError, match="renumber"):
            system.upload_resources(second, data.provider_corpus.copy())

    def test_start_requires_resources(self, campaign):
        _data, system, provider, _project = campaign
        empty = system.create_project(provider, "empty", budget=5)
        with pytest.raises(ProjectError, match="upload resources first"):
            system.start_project(empty)


class TestTaggerApi:
    def test_open_projects_lists_running(self, campaign):
        _data, system, _provider, project = campaign
        entries = system.open_projects()
        assert [entry["project_id"] for entry in entries] == [project]
        assert entries[0]["pay_per_task"] == 0.05

    def test_submit_post_approval_and_pay(self, campaign):
        data, system, _provider, project = campaign
        tagger = system.register_tagger("dana")
        resource = data.provider_corpus.resource(1)
        import numpy as np

        good_tags = list(np.flatnonzero(resource.theta)[:2])
        approved = system.submit_post(project, tagger, 1, good_tags)
        assert approved
        assert system.ledger.earned_by(tagger) == pytest.approx(0.05)
        assert system.projects.get(project)["budget_spent"] == 1

    def test_submit_post_requires_running(self, campaign):
        _data, system, _provider, project = campaign
        tagger = system.register_tagger("dana")
        system.pause_project(project)
        with pytest.raises(ProjectError):
            system.submit_post(project, tagger, 1, [0])


class TestExport:
    def test_json_export(self, campaign, tmp_path):
        _data, system, _provider, project = campaign
        system.run_project(project, tasks=20)
        path = export_project_json(system, project, tmp_path / "out.json")
        import json

        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["project"]["id"] == project
        assert len(payload["resources"]) == 15
        assert all("tags" in resource for resource in payload["resources"])

    def test_csv_export(self, campaign, tmp_path):
        _data, system, _provider, project = campaign
        path = export_project_csv(system, project, tmp_path / "out.csv")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("resource_id,name")
        assert len(lines) == 16

    def test_export_empty_project_rejected(self, campaign, tmp_path):
        _data, system, provider, _project = campaign
        empty = system.create_project(provider, "empty", budget=1)
        with pytest.raises(ProjectError):
            export_project_json(system, empty, tmp_path / "never.json")
