"""Unit tests: database DDL, snapshots, persistence."""

import pytest

from repro.store import (
    Column,
    ConstraintError,
    Database,
    DataType,
    Eq,
    Query,
    Schema,
    StoreError,
    UnknownTableError,
    export_table_csv,
    load_database,
    save_database,
)


def schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("name", DataType.TEXT),
            Column("payload", DataType.JSON, nullable=True),
        ],
        primary_key="id",
    )


class TestDdl:
    def test_create_and_get(self):
        database = Database("d")
        database.create_table("t", schema())
        assert database.has_table("t")
        assert database.table_names() == ["t"]

    def test_duplicate_table_rejected(self):
        database = Database("d")
        database.create_table("t", schema())
        with pytest.raises(Exception, match="already exists"):
            database.create_table("t", schema())

    def test_unknown_table_raises_with_suggestions(self):
        database = Database("d")
        database.create_table("t", schema())
        with pytest.raises(UnknownTableError, match="'t'"):
            database.table("missing")

    def test_drop_table(self):
        database = Database("d")
        database.create_table("t", schema())
        database.drop_table("t")
        assert not database.has_table("t")
        with pytest.raises(UnknownTableError):
            database.drop_table("t")


class TestSnapshots:
    def build(self) -> Database:
        database = Database("d")
        table = database.create_table("t", schema())
        table.create_index("name", kind="hash")
        table.insert({"name": "a", "payload": {"k": [1, 2]}})
        table.insert({"name": "b", "payload": None})
        return database

    def test_snapshot_roundtrip(self):
        database = self.build()
        clone = Database.from_snapshot(database.to_snapshot())
        assert clone.table_names() == ["t"]
        assert list(clone.table("t").scan()) == list(database.table("t").scan())

    def test_snapshot_restores_indexes(self):
        database = self.build()
        clone = Database.from_snapshot(database.to_snapshot())
        index = clone.table("t").index_for("name")
        assert index is not None
        assert index.lookup("a") == {1}
        clone.verify()

    def test_snapshot_restores_autoincrement(self):
        database = self.build()
        clone = Database.from_snapshot(database.to_snapshot())
        assert clone.table("t").insert({"name": "c"}) == 3

    def test_save_load_json(self, tmp_path):
        database = self.build()
        path = save_database(database, tmp_path / "db.json")
        loaded = load_database(path)
        assert list(loaded.table("t").scan()) == list(database.table("t").scan())

    def test_save_load_gzip(self, tmp_path):
        database = self.build()
        path = save_database(database, tmp_path / "db.json.gz")
        loaded = load_database(path)
        assert len(loaded.table("t")) == 2

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no database snapshot"):
            load_database(tmp_path / "nope.json")

    def test_load_corrupt_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt"):
            load_database(path)

    def test_verify_cross_checks_plan_caches(self):
        """Database.verify() covers cached-plan metadata, not just
        index membership: warmed single-table and join entries pass."""
        database = Database("d")
        left = database.create_table("left", schema())
        right = database.create_table(
            "right",
            Schema(
                [Column("id", DataType.INT), Column("name", DataType.TEXT)],
                primary_key="id",
            ),
        )
        for name in ("a", "b", "c"):
            left.insert({"name": name, "payload": None})
            right.insert({"name": name})
        Query(left).where(Eq("name", "a")).count()
        Query(left).join(right, on=("name", "name"), prefix_right="r_").all()
        assert len(left.plan_cache) >= 1
        database.verify()

    def test_verify_rejects_regressed_ddl_generation(self):
        """A join entry pinning a participant at a generation beyond the
        participant cache's current one means metadata rolled backwards."""
        database = Database("d")
        left = database.create_table("left", schema())
        right = database.create_table(
            "right",
            Schema(
                [Column("id", DataType.INT), Column("name", DataType.TEXT)],
                primary_key="id",
            ),
        )
        left.insert({"name": "a", "payload": None})
        right.insert({"name": "a"})
        Query(left).join(right, on=("name", "name"), prefix_right="r_").all()
        entry = next(
            e for e in left.plan_cache._entries.values() if hasattr(e, "participants")
        )
        entry.participants = tuple(
            (table, generation + 99, rows)
            for table, generation, rows in entry.participants
        )
        with pytest.raises(ConstraintError, match="generations only advance"):
            database.verify()

    def test_verify_rejects_negative_row_counter(self):
        database = Database("d")
        table = database.create_table("t", schema())
        table.insert({"name": "a", "payload": None})
        Query(table).where(Eq("name", "a")).count()
        entry = next(iter(table.plan_cache._entries.values()))
        entry.row_count = -1
        with pytest.raises(ConstraintError, match="negative row"):
            database.verify()

    def test_verify_rejects_misrooted_join_entry(self):
        database = Database("d")
        left = database.create_table("left", schema())
        right = database.create_table(
            "right",
            Schema(
                [Column("id", DataType.INT), Column("name", DataType.TEXT)],
                primary_key="id",
            ),
        )
        left.insert({"name": "a", "payload": None})
        right.insert({"name": "a"})
        Query(left).join(right, on=("name", "name"), prefix_right="r_").all()
        key, entry = next(
            (k, e)
            for k, e in left.plan_cache._entries.items()
            if hasattr(e, "participants")
        )
        right.plan_cache._entries[key] = entry
        with pytest.raises(ConstraintError, match="rooted"):
            database.verify()

    def test_csv_export(self, tmp_path):
        database = self.build()
        path = export_table_csv(database, "t", tmp_path / "t.csv")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0] == "id,name,payload"
        assert len(lines) == 3
        assert '""k"": [1, 2]' in lines[1] or '{""k"": [1, 2]}' in lines[1]
