"""Unit tests: database DDL, snapshots, persistence."""

import pytest

from repro.store import (
    Column,
    Database,
    DataType,
    Schema,
    StoreError,
    UnknownTableError,
    export_table_csv,
    load_database,
    save_database,
)


def schema() -> Schema:
    return Schema(
        [
            Column("id", DataType.INT),
            Column("name", DataType.TEXT),
            Column("payload", DataType.JSON, nullable=True),
        ],
        primary_key="id",
    )


class TestDdl:
    def test_create_and_get(self):
        database = Database("d")
        database.create_table("t", schema())
        assert database.has_table("t")
        assert database.table_names() == ["t"]

    def test_duplicate_table_rejected(self):
        database = Database("d")
        database.create_table("t", schema())
        with pytest.raises(Exception, match="already exists"):
            database.create_table("t", schema())

    def test_unknown_table_raises_with_suggestions(self):
        database = Database("d")
        database.create_table("t", schema())
        with pytest.raises(UnknownTableError, match="'t'"):
            database.table("missing")

    def test_drop_table(self):
        database = Database("d")
        database.create_table("t", schema())
        database.drop_table("t")
        assert not database.has_table("t")
        with pytest.raises(UnknownTableError):
            database.drop_table("t")


class TestSnapshots:
    def build(self) -> Database:
        database = Database("d")
        table = database.create_table("t", schema())
        table.create_index("name", kind="hash")
        table.insert({"name": "a", "payload": {"k": [1, 2]}})
        table.insert({"name": "b", "payload": None})
        return database

    def test_snapshot_roundtrip(self):
        database = self.build()
        clone = Database.from_snapshot(database.to_snapshot())
        assert clone.table_names() == ["t"]
        assert list(clone.table("t").scan()) == list(database.table("t").scan())

    def test_snapshot_restores_indexes(self):
        database = self.build()
        clone = Database.from_snapshot(database.to_snapshot())
        index = clone.table("t").index_for("name")
        assert index is not None
        assert index.lookup("a") == {1}
        clone.verify()

    def test_snapshot_restores_autoincrement(self):
        database = self.build()
        clone = Database.from_snapshot(database.to_snapshot())
        assert clone.table("t").insert({"name": "c"}) == 3

    def test_save_load_json(self, tmp_path):
        database = self.build()
        path = save_database(database, tmp_path / "db.json")
        loaded = load_database(path)
        assert list(loaded.table("t").scan()) == list(database.table("t").scan())

    def test_save_load_gzip(self, tmp_path):
        database = self.build()
        path = save_database(database, tmp_path / "db.json.gz")
        loaded = load_database(path)
        assert len(loaded.table("t")) == 2

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no database snapshot"):
            load_database(tmp_path / "nope.json")

    def test_load_corrupt_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt"):
            load_database(path)

    def test_csv_export(self, tmp_path):
        database = self.build()
        path = export_table_csv(database, "t", tmp_path / "t.csv")
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0] == "id,name,payload"
        assert len(lines) == 3
        assert '""k"": [1, 2]' in lines[1] or '{""k"": [1, 2]}' in lines[1]
