"""Tests: the run-all runner, batching experiment, promote/stop suggestions."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.runner import run_all


class TestRunAll:
    def test_subset_with_reports(self, tmp_path):
        summary = run_all(fast=True, out_dir=tmp_path, only=["EXP-ST", "EXP-UI"])
        assert set(summary.results) == {"EXP-ST", "EXP-UI"}
        assert summary.all_claims_pass
        assert (tmp_path / "EXP-ST.txt").exists()
        assert (tmp_path / "EXP-UI.json").exists()
        assert (tmp_path / "SUMMARY.md").exists()
        markdown = (tmp_path / "SUMMARY.md").read_text(encoding="utf-8")
        assert "Reproduction summary" in markdown
        assert "EXP-ST" in markdown

    def test_errors_captured_not_raised(self, tmp_path):
        summary = run_all(fast=True, out_dir=None, only=["EXP-NOPE"])
        assert "EXP-NOPE" in summary.errors
        assert not summary.all_claims_pass

    def test_claim_counting(self):
        summary = run_all(fast=True, only=["EXP-ST"])
        passed, total = summary.total_claims()
        assert passed == total >= 1


class TestBatchingExperiment:
    def test_fast_variant(self):
        result = run_experiment("EXP-B", fast=True)
        assert result.all_claims_pass
        assert len(result.rows) == 2


class TestSuggestions:
    @pytest.fixture()
    def campaign(self):
        from repro.datasets import make_delicious_like
        from repro.system import ITagSystem

        data = make_delicious_like(
            n_resources=12, initial_posts_total=90, master_seed=31,
            population_size=20,
        )
        system = ITagSystem(master_seed=31)
        provider = system.register_provider("p")
        project = system.create_project(provider, "proj", budget=60)
        system.upload_resources(project, data.provider_corpus)
        system.start_project(project, noise_model=data.dataset.noise_model)
        system.run_project(project, tasks=40)
        return system, project

    def test_promotions_are_lowest_quality(self, campaign):
        from repro.system import suggest_promotions

        system, project = campaign
        suggestions = suggest_promotions(system, project, count=3)
        assert len(suggestions) == 3
        qualities = [row["quality"] for row in suggestions]
        assert qualities == sorted(qualities)
        all_rows = system.resources.of_project(project)
        minimum = min(row["quality"] for row in all_rows)
        assert suggestions[0]["quality"] == minimum

    def test_promotions_exclude_stopped(self, campaign):
        from repro.system import suggest_promotions

        system, project = campaign
        worst = suggest_promotions(system, project, count=1)[0]
        system.stop_resource(project, worst["id"])
        refreshed = suggest_promotions(system, project, count=12)
        assert all(row["id"] != worst["id"] for row in refreshed)

    def test_stops_require_min_quality(self, campaign):
        from repro.system import suggest_stops

        system, project = campaign
        strict = suggest_stops(system, project, min_quality=1.01)
        assert strict == []
        lax = suggest_stops(system, project, count=4, min_quality=0.0)
        qualities = [row["quality"] for row in lax]
        assert qualities == sorted(qualities, reverse=True)


class TestCliRunAll:
    def test_cli_run_all_subset(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["run-all", "--fast", "--only", "EXP-ST", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "claims pass" in out
        assert (tmp_path / "SUMMARY.md").exists()
