"""Tests: the real Delicious-dump loader and platform churn."""

import numpy as np
import pytest

from repro.datasets import PROVIDER_CUTOFF, load_delicious_tsv, parse_timestamp
from repro.datasets.splits import split_corpus_at
from repro.errors import DatasetError


def write_dump(tmp_path, lines):
    path = tmp_path / "delicious.tsv"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


GOOD_LINES = [
    "2006-05-01\talice\thttp://a.example\tpython Programming",
    "2006-06-02\tbob\thttp://a.example\tpython web",
    "2007-03-03\tcarol\thttp://a.example\tPYTHON   django",
    "2006-07-04\talice\thttp://b.example\tmusic jazz",
    "2008-01-05\tdave\thttp://b.example\tmusic",
    "2006-08-06\teve\thttp://c.example\tthe of and",  # all stopwords
]


class TestParseTimestamp:
    def test_iso_dates_ordered(self):
        early = parse_timestamp("2006-05-01")
        late = parse_timestamp("2007-02-01")
        assert early < late

    def test_float_passthrough(self):
        assert parse_timestamp("123.5") == 123.5

    def test_datetime_suffix_tolerated(self):
        assert parse_timestamp("2006-05-01T12:30:00Z") == parse_timestamp("2006-05-01")

    def test_garbage_rejected(self):
        with pytest.raises(DatasetError):
            parse_timestamp("yesterday")


class TestLoader:
    def test_loads_resources_and_posts(self, tmp_path):
        report = load_delicious_tsv(write_dump(tmp_path, GOOD_LINES))
        assert len(report.corpus) == 2  # c.example normalized away
        assert report.posts_loaded == 5
        assert report.lines_skipped == 1
        # eve's post normalized away, so she never registers as a user.
        assert report.users == 4
        assert "loaded 5 posts" in report.describe()

    def test_tags_normalized_and_shared(self, tmp_path):
        report = load_delicious_tsv(write_dump(tmp_path, GOOD_LINES))
        vocabulary = report.corpus.vocabulary
        assert "python" in vocabulary
        assert "PYTHON" not in vocabulary
        resource = next(
            r for r in report.corpus if r.name == "http://a.example"
        )
        python_id = vocabulary.id_of("python")
        assert resource.counter.count_of(python_id) == 3

    def test_posts_time_ordered_per_resource(self, tmp_path):
        report = load_delicious_tsv(write_dump(tmp_path, GOOD_LINES))
        for resource in report.corpus:
            times = [post.timestamp for post in resource.posts]
            assert times == sorted(times)

    def test_min_posts_filter(self, tmp_path):
        report = load_delicious_tsv(
            write_dump(tmp_path, GOOD_LINES), min_posts_per_resource=3
        )
        assert [r.name for r in report.corpus] == ["http://a.example"]

    def test_max_resources_keeps_most_tagged(self, tmp_path):
        report = load_delicious_tsv(
            write_dump(tmp_path, GOOD_LINES), max_resources=1
        )
        assert [r.name for r in report.corpus] == ["http://a.example"]

    def test_malformed_lines_skipped(self, tmp_path):
        lines = GOOD_LINES + [
            "not-a-timestamp\tuser\thttp://x\ttag",
            "2006-01-01\tuser",  # too few columns
            "2006-01-01\tuser\t   \ttag",  # empty url
        ]
        report = load_delicious_tsv(write_dump(tmp_path, lines))
        assert report.lines_skipped == 4
        assert report.posts_loaded == 5

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="no Delicious dump"):
            load_delicious_tsv(tmp_path / "nope.tsv")

    def test_temporal_split_runs_on_loaded_corpus(self, tmp_path):
        """The Sec. IV protocol applies directly to a real dump."""
        report = load_delicious_tsv(write_dump(tmp_path, GOOD_LINES))
        cutoff = parse_timestamp("2007-02-01")
        split = split_corpus_at(report.corpus, cutoff)
        assert split.provider_post_count == 3
        assert split.heldout_post_count == 2


class TestChurn:
    def make_platform(self):
        from repro.crowd import CrowdPlatform, CrowdWorker
        from repro.taggers import NoiseModel, preset
        from repro.tagging import Vocabulary

        vocabulary = Vocabulary(["a", "b"])
        noise = NoiseModel.with_typo_tags(vocabulary, 1)
        workers = [
            CrowdWorker(worker_id=index, profile=preset("casual"))
            for index in range(10)
        ]
        return CrowdPlatform(workers, noise, np.random.default_rng(0))

    def test_churn_deactivates_fraction(self):
        platform = self.make_platform()
        left = platform.churn(np.random.default_rng(1), leave_fraction=0.5)
        assert left == 5
        assert len(platform.qualified_workers()) == 5

    def test_churn_never_empties_pool(self):
        platform = self.make_platform()
        platform.churn(np.random.default_rng(1), leave_fraction=1.0)
        assert len(platform.qualified_workers()) >= 1

    def test_churn_zero_is_noop(self):
        platform = self.make_platform()
        assert platform.churn(np.random.default_rng(1), leave_fraction=0.0) == 0

    def test_churn_validation(self):
        from repro.errors import PlatformError

        platform = self.make_platform()
        with pytest.raises(PlatformError):
            platform.churn(np.random.default_rng(1), leave_fraction=1.5)

    def test_campaign_survives_churn(self):
        """The system keeps allocating after most workers leave."""
        from repro.crowd import TaggingTask
        from repro.tagging import TaggedResource

        platform = self.make_platform()
        theta = np.zeros(3)
        theta[:2] = [0.6, 0.4]
        platform.register_resource(TaggedResource(1, "r", theta=theta))
        for _ in range(5):
            platform.execute(TaggingTask(project_id=1, resource_id=1, pay=0.01))
        platform.churn(np.random.default_rng(2), leave_fraction=0.9)
        for _ in range(5):
            platform.execute(TaggingTask(project_id=1, resource_id=1, pay=0.01))
        assert platform.stats.submitted == 10
