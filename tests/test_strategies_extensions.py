"""Tests: the adaptive estimated-gain strategy and trace replay."""

import numpy as np
import pytest

from repro.errors import StrategyError
from repro.quality import QualityBoard
from repro.rng import RngRegistry
from repro.strategies import (
    AdaptiveEstimatedGain,
    AllocationEngine,
    TracePlayer,
    make_strategy,
    replay_free_choice,
)
from repro.tagging import Corpus, Post, TaggedResource, Vocabulary


class TestAdaptiveStrategy:
    def test_factory_builds_it(self):
        strategy = make_strategy("adaptive")
        assert strategy.name == "adaptive"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveEstimatedGain(min_samples=2)
        with pytest.raises(ValueError):
            AdaptiveEstimatedGain(refit_every=0)
        with pytest.raises(ValueError):
            AdaptiveEstimatedGain(exploration_bonus=-1.0)

    def test_runs_a_campaign(self, small_data, small_data_copy):
        engine = AllocationEngine(
            small_data_copy,
            small_data.dataset.population,
            AdaptiveEstimatedGain(),
            budget=60,
            board=QualityBoard(small_data_copy),
            oracle_targets=small_data.dataset.oracle_targets(),
            rng=RngRegistry(1).stream("adaptive"),
            record_every=60,
        )
        result = engine.run()
        assert result.budget_spent == 60
        assert result.oracle_improvement > 0

    def test_competitive_with_fp(self, small_data):
        improvements = {}
        for name in ("adaptive", "fp", "fc"):
            corpus = small_data.split.provider_corpus.copy()
            engine = AllocationEngine(
                corpus,
                small_data.dataset.population,
                make_strategy(name),
                budget=80,
                board=QualityBoard(corpus),
                oracle_targets=small_data.dataset.oracle_targets(),
                rng=RngRegistry(2).stream(f"cmp.{name}"),
                record_every=80,
            )
            improvements[name] = engine.run().oracle_improvement
        # The learned strategy must land between FC and ~FP.
        assert improvements["adaptive"] > improvements["fc"]
        assert improvements["adaptive"] > 0.6 * improvements["fp"]

    def test_reset_clears_state(self, small_data, small_data_copy):
        strategy = AdaptiveEstimatedGain()
        engine = AllocationEngine(
            small_data_copy,
            small_data.dataset.population,
            strategy,
            budget=20,
            board=QualityBoard(small_data_copy),
            rng=RngRegistry(3).stream("r"),
        )
        engine.run()
        strategy.reset()
        assert not strategy._fitted_once
        assert strategy._curves == {}


class TestTracePlayer:
    def make_trace(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        corpus = Corpus(vocabulary)
        corpus.add_resource(TaggedResource(1, "r1"))
        corpus.add_resource(TaggedResource(2, "r2"))
        trace = [
            Post.from_tags(1, 9, [0], timestamp=1.0),
            Post.from_tags(7, 9, [1], timestamp=2.0),  # unknown resource
            Post.from_tags(2, 9, [1, 2], timestamp=3.0),
        ]
        return corpus, trace

    def test_play_applies_in_order(self):
        corpus, trace = self.make_trace()
        player = TracePlayer(trace)
        assert player.remaining == 3
        first = player.play_one(corpus)
        assert first.resource_id == 1
        assert corpus.resource(1).n_posts == 1

    def test_skip_and_exhaustion(self):
        corpus, trace = self.make_trace()
        player = TracePlayer(trace)
        player.play_one(corpus)
        player.skip_one()
        player.play_one(corpus)
        assert player.exhausted
        with pytest.raises(StrategyError, match="exhausted"):
            player.peek()

    def test_reset(self):
        corpus, trace = self.make_trace()
        player = TracePlayer(trace)
        player.play_one(corpus)
        player.reset()
        assert player.remaining == 3


class TestReplayFreeChoice:
    def test_replays_heldout_as_fc(self, small_data):
        corpus = small_data.split.provider_corpus.copy()
        targets = small_data.dataset.oracle_targets()
        result = replay_free_choice(
            corpus,
            small_data.split.heldout_posts,
            budget=40,
            oracle_targets=targets,
            record_every=10,
        )
        assert result.strategy_names == ["fc-trace"]
        assert 0 < result.budget_spent <= 40
        assert sum(result.allocation.values()) == result.budget_spent
        assert result.trajectory[0].budget_spent == 0
        assert result.trajectory[-1].budget_spent == result.budget_spent

    def test_trace_shorter_than_budget(self, small_data):
        corpus = small_data.split.provider_corpus.copy()
        result = replay_free_choice(
            corpus, small_data.split.heldout_posts, budget=10**6
        )
        assert result.budget_spent <= len(small_data.split.heldout_posts)

    def test_skips_unknown_resources(self):
        vocabulary = Vocabulary(["a"])
        corpus = Corpus(vocabulary)
        corpus.add_resource(TaggedResource(1, "r1"))
        trace = [
            Post.from_tags(99, 9, [0], timestamp=1.0),
            Post.from_tags(1, 9, [0], timestamp=2.0),
        ]
        result = replay_free_choice(corpus, trace, budget=5)
        assert result.budget_spent == 1
        assert corpus.resource(1).n_posts == 1

    def test_negative_budget_rejected(self):
        with pytest.raises(StrategyError):
            replay_free_choice(Corpus(Vocabulary(["a"])), [], budget=-1)

    def test_trace_replay_matches_fc_magnitude(self, small_data):
        """The trace IS free choice, so the gains must be FC-like (small)."""
        targets = small_data.dataset.oracle_targets()
        corpus_trace = small_data.split.provider_corpus.copy()
        trace_result = replay_free_choice(
            corpus_trace, small_data.split.heldout_posts, budget=60,
            oracle_targets=targets,
        )
        corpus_fp = small_data.split.provider_corpus.copy()
        engine = AllocationEngine(
            corpus_fp,
            small_data.dataset.population,
            make_strategy("fp"),
            budget=trace_result.budget_spent,
            board=QualityBoard(corpus_fp),
            oracle_targets=targets,
            rng=RngRegistry(4).stream("fp-vs-trace"),
            record_every=100,
        )
        fp_result = engine.run()
        assert trace_result.oracle_improvement < fp_result.oracle_improvement
