"""Unit tests: tagger profiles, noise model, post generation, populations."""

import numpy as np
import pytest

from repro.errors import ConfigError, PostError
from repro.rng import RngRegistry
from repro.taggers import (
    NoiseModel,
    PostGenerator,
    TaggerPopulation,
    TaggerProfile,
    default_mixture,
    preset,
    sample_post_size,
    zipf_weights,
)
from repro.tagging import TaggedResource, Vocabulary


class TestProfiles:
    def test_presets_valid(self):
        for name in ("casual", "expert", "sloppy", "spammer"):
            preset(name).validate()

    def test_unknown_preset(self):
        with pytest.raises(ConfigError, match="unknown tagger preset"):
            preset("ninja")

    def test_with_noise(self):
        modified = preset("casual").with_noise(0.5)
        assert modified.noise_rate == 0.5
        assert preset("casual").noise_rate == 0.10  # original untouched

    def test_validation_bounds(self):
        with pytest.raises(ConfigError):
            TaggerProfile(noise_rate=2.0).validate()
        with pytest.raises(ConfigError):
            TaggerProfile(mean_tags_per_post=0.5).validate()
        with pytest.raises(ConfigError):
            TaggerProfile(vocabulary_breadth=0.0).validate()


class TestNoise:
    def test_zipf_weights_normalized_decreasing(self):
        weights = zipf_weights(100, 1.2)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_with_typo_tags_extends_vocabulary(self):
        vocabulary = Vocabulary(["a", "b"])
        noise = NoiseModel.with_typo_tags(vocabulary, 5)
        assert len(vocabulary) == 7
        assert len(noise.typo_pool) == 5
        assert noise.vocabulary_size == 7

    def test_effective_noise_includes_typo_mass(self):
        vocabulary = Vocabulary(["a", "b", "c"])
        noise = NoiseModel.with_typo_tags(vocabulary, 2)
        eta = noise.effective_noise_distribution(0.5)
        assert eta.sum() == pytest.approx(1.0)
        typo_mass = sum(eta[tag_id] for tag_id in noise.typo_pool)
        assert typo_mass >= 0.5 - 1e-9

    def test_effective_noise_without_typos(self):
        noise = NoiseModel(10)
        eta = noise.effective_noise_distribution(0.0)
        assert eta == pytest.approx(noise.noise_distribution())

    def test_sample_noise_tag_in_range(self, rng):
        noise = NoiseModel(50)
        stream = rng.stream("noise")
        samples = [noise.sample_noise_tag(stream, 0.0) for _ in range(100)]
        assert all(0 <= s < 50 for s in samples)


class TestPostGeneration:
    def make(self, rng, breadth=1.0, noise_rate=0.0):
        vocabulary = Vocabulary([f"t{i}" for i in range(20)])
        noise = NoiseModel.with_typo_tags(vocabulary, 3)
        theta = np.zeros(len(vocabulary))
        theta[:5] = [0.4, 0.3, 0.15, 0.1, 0.05]
        resource = TaggedResource(1, "r", theta=theta)
        profile = TaggerProfile(
            noise_rate=noise_rate, mean_tags_per_post=3.0,
            max_tags_per_post=5, typo_rate=0.0, vocabulary_breadth=breadth,
        )
        return PostGenerator(noise, rng.stream("gen")), resource, profile

    def test_post_size_bounds(self, rng):
        stream = rng.stream("size")
        sizes = [sample_post_size(stream, 3.0, 5) for _ in range(300)]
        assert all(1 <= size <= 5 for size in sizes)
        assert 2.0 < np.mean(sizes) < 4.0
        with pytest.raises(PostError):
            sample_post_size(stream, 3.0, 0)

    def test_clean_tagger_draws_from_support(self, rng):
        generator, resource, profile = self.make(rng)
        for _ in range(50):
            post = generator.generate(resource, profile, 1)
            assert all(tag_id < 5 for tag_id in post.tag_ids)

    def test_narrow_breadth_limits_tags(self, rng):
        generator, resource, profile = self.make(rng, breadth=0.4)
        seen = set()
        for _ in range(100):
            seen.update(generator.generate(resource, profile, 1).tag_ids)
        assert seen <= {0, 1}  # top 40% of a 5-tag support = 2 tags

    def test_noisy_tagger_leaves_support(self, rng):
        generator, resource, profile = self.make(rng, noise_rate=0.9)
        seen = set()
        for _ in range(100):
            seen.update(generator.generate(resource, profile, 1).tag_ids)
        assert any(tag_id >= 5 for tag_id in seen)

    def test_requires_theta(self, rng):
        generator, _resource, profile = self.make(rng)
        bare = TaggedResource(2, "no-theta")
        with pytest.raises(PostError, match="no true distribution"):
            generator.generate(bare, profile, 1)

    def test_theta_size_mismatch(self, rng):
        generator, _resource, profile = self.make(rng)
        wrong = TaggedResource(3, "w", theta=np.array([1.0]))
        with pytest.raises(PostError, match="vocabulary size"):
            generator.generate(wrong, profile, 1)


class TestPopulation:
    def build(self, rng, size=20):
        vocabulary = Vocabulary([f"t{i}" for i in range(10)])
        noise = NoiseModel.with_typo_tags(vocabulary, 2)
        return TaggerPopulation.from_mixture(
            size, default_mixture(), noise, rng.stream("pop")
        )

    def test_mixture_produces_profiles(self, rng):
        population = self.build(rng, size=200)
        counts = population.profile_counts()
        assert counts.get("casual", 0) > counts.get("spammer", 0)
        assert len(population) == 200

    def test_profile_distribution_sums_to_one(self, rng):
        population = self.build(rng)
        total = sum(weight for _profile, weight in population.profile_distribution())
        assert total == pytest.approx(1.0)

    def test_mean_noise_and_post_size(self, rng):
        population = self.build(rng, size=100)
        assert 0.0 < population.mean_noise_rate() < 1.0
        assert 1.0 <= population.mean_post_size() <= 12.0

    def test_free_choice_prefers_popular(self, rng):
        from repro.tagging import Corpus

        vocabulary = Vocabulary([f"t{i}" for i in range(10)])
        noise = NoiseModel.with_typo_tags(vocabulary, 2)
        population = TaggerPopulation.from_mixture(
            10, {"casual": 1.0}, noise, rng.stream("fc")
        )
        corpus = Corpus(vocabulary)
        theta = np.zeros(len(vocabulary))
        theta[0] = 1.0
        corpus.add_resource(TaggedResource(1, "popular", theta=theta, popularity=100.0))
        corpus.add_resource(TaggedResource(2, "obscure", theta=theta, popularity=0.1))
        hits = {1: 0, 2: 0}
        for _ in range(200):
            post = population.free_choice(corpus)
            hits[post.resource_id] += 1
            corpus.add_post(post)
        assert hits[1] > 3 * hits[2]

    def test_validation(self, rng):
        vocabulary = Vocabulary(["a"])
        noise = NoiseModel.with_typo_tags(vocabulary, 1)
        with pytest.raises(ConfigError):
            TaggerPopulation([], noise, rng.stream("x"))
        with pytest.raises(ConfigError):
            TaggerPopulation.from_mixture(0, {"casual": 1.0}, noise, rng.stream("y"))
        with pytest.raises(ConfigError):
            TaggerPopulation.from_mixture(5, {}, noise, rng.stream("z"))

    def test_unknown_tagger_lookup(self, rng):
        population = self.build(rng)
        with pytest.raises(ConfigError, match="unknown tagger"):
            population.tagger(999)
