"""Unit tests: dataset generation, temporal splits, IO."""

import numpy as np
import pytest

from repro.config import DatasetConfig
from repro.datasets import (
    PROVIDER_CUTOFF,
    DatasetGenerator,
    corpus_to_database,
    dataset_report,
    load_corpus,
    make_delicious_like,
    save_corpus,
    split_corpus_at,
)
from repro.rng import RngRegistry
from repro.store import Eq, Query
from repro.taggers.profiles import preset


class TestGenerator:
    def test_shapes(self, small_data):
        corpus = small_data.dataset.corpus
        assert len(corpus) == 30
        assert corpus.total_posts() == 240
        assert corpus.vocabulary.frozen

    def test_thetas_are_distributions(self, small_data):
        for resource in small_data.dataset.corpus:
            assert resource.theta is not None
            assert resource.theta.sum() == pytest.approx(1.0)
            assert np.all(resource.theta >= 0)

    def test_support_sizes_vary(self, small_data):
        sizes = {
            int(np.count_nonzero(resource.theta))
            for resource in small_data.dataset.corpus
        }
        assert len(sizes) > 3

    def test_determinism(self):
        a = make_delicious_like(n_resources=10, initial_posts_total=50, master_seed=9,
                                population_size=10)
        b = make_delicious_like(n_resources=10, initial_posts_total=50, master_seed=9,
                                population_size=10)
        assert a.dataset.corpus.to_dict() == b.dataset.corpus.to_dict()

    def test_different_seeds_differ(self):
        a = make_delicious_like(n_resources=10, initial_posts_total=50, master_seed=1,
                                population_size=10)
        b = make_delicious_like(n_resources=10, initial_posts_total=50, master_seed=2,
                                population_size=10)
        assert a.dataset.corpus.to_dict() != b.dataset.corpus.to_dict()

    def test_min_initial_posts_floor(self):
        generator = DatasetGenerator(
            DatasetConfig(
                n_resources=8, vocabulary_size=100, n_topics=4,
                initial_posts_total=30, min_initial_posts=2,
            ),
            rng=RngRegistry(3),
            population_size=10,
        )
        dataset = generator.generate()
        assert all(resource.n_posts >= 2 for resource in dataset.corpus)

    def test_custom_profiles(self):
        clean = preset("casual").with_noise(0.0)
        data = make_delicious_like(
            n_resources=6, initial_posts_total=30, master_seed=4,
            population_size=6, profiles=[clean],
        )
        distribution = data.dataset.population.profile_distribution()
        assert len(distribution) == 1
        assert distribution[0][0].noise_rate == 0.0

    def test_oracle_targets_are_distributions(self, small_data):
        targets = small_data.dataset.oracle_targets()
        assert set(targets) == set(small_data.dataset.corpus.resource_ids())
        for target in targets.values():
            assert target.sum() == pytest.approx(1.0, abs=1e-6)

    def test_oracle_targets_include_noise_mass(self):
        noisy = preset("casual").with_noise(0.5)
        data = make_delicious_like(
            n_resources=4, initial_posts_total=10, master_seed=4,
            population_size=4, profiles=[noisy],
        )
        targets = data.dataset.oracle_targets()
        resource = data.dataset.corpus.resource(1)
        off_support = np.flatnonzero(resource.theta == 0)
        assert targets[1][off_support].sum() > 0.2  # ε/2-ish of mass off-support

    def test_report_renders(self, small_data):
        report = dataset_report(small_data.dataset.corpus)
        assert "gini" in report
        assert "posts per resource" in report


class TestSplits:
    def test_split_partitions_posts(self, small_data):
        split = small_data.split
        total = small_data.dataset.corpus.total_posts()
        assert split.provider_post_count + split.heldout_post_count == total

    def test_provider_posts_before_cutoff(self, small_data):
        for resource in small_data.split.provider_corpus:
            for post in resource.posts:
                assert post.timestamp < PROVIDER_CUTOFF

    def test_heldout_posts_after_cutoff_and_sorted(self, small_data):
        heldout = small_data.split.heldout_posts
        assert all(post.timestamp >= PROVIDER_CUTOFF for post in heldout)
        times = [post.timestamp for post in heldout]
        assert times == sorted(times)

    def test_provider_corpus_resequenced(self, small_data):
        for resource in small_data.split.provider_corpus:
            indexes = [post.index for post in resource.posts]
            assert indexes == list(range(1, len(indexes) + 1))

    def test_split_keeps_all_resources(self, small_data):
        assert len(small_data.split.provider_corpus) == len(small_data.dataset.corpus)

    def test_split_at_zero_holds_everything(self, small_data):
        split = split_corpus_at(small_data.dataset.corpus, 0.0)
        assert split.provider_post_count == 0
        assert split.heldout_post_count == small_data.dataset.corpus.total_posts()


class TestIo:
    def test_corpus_json_roundtrip(self, tmp_path, small_data):
        path = save_corpus(small_data.dataset.corpus, tmp_path / "c.json")
        loaded = load_corpus(path)
        assert loaded.to_dict() == small_data.dataset.corpus.to_dict()

    def test_corpus_gzip_roundtrip(self, tmp_path, small_data):
        path = save_corpus(small_data.dataset.corpus, tmp_path / "c.json.gz")
        loaded = load_corpus(path)
        assert loaded.total_posts() == small_data.dataset.corpus.total_posts()

    def test_load_missing(self, tmp_path):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            load_corpus(tmp_path / "nope.json")

    def test_corpus_to_database_schema(self, small_data):
        database = corpus_to_database(small_data.dataset.corpus)
        assert set(database.table_names()) == {"resources", "tags", "posts", "post_tags"}
        corpus = small_data.dataset.corpus
        assert len(database.table("resources")) == len(corpus)
        assert len(database.table("tags")) == len(corpus.vocabulary)
        assert len(database.table("posts")) == corpus.total_posts()

    def test_corpus_to_database_join(self, small_data):
        database = corpus_to_database(small_data.dataset.corpus)
        # Pick a resource with posts; its post rows match the corpus.
        resource = next(
            r for r in small_data.dataset.corpus if r.n_posts > 0
        )
        rows = (
            Query(database.table("posts"))
            .where(Eq("resource_id", resource.resource_id))
            .all()
        )
        assert len(rows) == resource.n_posts
        database.verify()
