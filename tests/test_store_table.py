"""Unit tests: table CRUD, constraints, index maintenance."""

import pytest

from repro.store import (
    Column,
    ConstraintError,
    Database,
    DataType,
    DuplicateKeyError,
    RowNotFoundError,
    Schema,
)
from repro.store.errors import SchemaError, UnknownColumnError


class TestInsert:
    def test_autoincrement_pk(self, resources_table):
        _db, table = resources_table
        pk1 = table.insert({"name": "a", "kind": "url"})
        pk2 = table.insert({"name": "b", "kind": "url"})
        assert (pk1, pk2) == (1, 2)

    def test_explicit_pk_bumps_autoincrement(self, resources_table):
        _db, table = resources_table
        table.insert({"id": 10, "name": "a", "kind": "url"})
        assert table.insert({"name": "b", "kind": "url"}) == 11

    def test_duplicate_pk_rejected(self, resources_table):
        _db, table = resources_table
        table.insert({"id": 1, "name": "a", "kind": "url"})
        with pytest.raises(DuplicateKeyError, match="duplicate primary key"):
            table.insert({"id": 1, "name": "b", "kind": "url"})

    def test_unique_constraint(self, resources_table):
        _db, table = resources_table
        table.insert({"name": "a", "kind": "url"})
        with pytest.raises(DuplicateKeyError, match="UNIQUE"):
            table.insert({"name": "a", "kind": "image"})

    def test_text_pk_must_be_provided(self):
        database = Database("t")
        table = database.create_table(
            "t",
            Schema([Column("key", DataType.TEXT)], primary_key="key"),
        )
        with pytest.raises(ConstraintError, match="must be provided"):
            table.insert({})
        assert table.insert({"key": "k1"}) == "k1"

    def test_returned_rows_are_copies(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url", "meta": {"x": 1}})
        row = table.get(pk)
        row["name"] = "mutated"
        assert table.get(pk)["name"] == "a"


class TestUpdateDelete:
    def test_update_changes_row(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url", "quality": 0.1})
        table.update(pk, {"quality": 0.9})
        assert table.get(pk)["quality"] == 0.9

    def test_update_missing_raises(self, resources_table):
        _db, table = resources_table
        with pytest.raises(RowNotFoundError):
            table.update(99, {"quality": 0.9})

    def test_pk_is_immutable(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url"})
        with pytest.raises(ConstraintError, match="immutable"):
            table.update(pk, {"id": pk + 1})

    def test_update_to_duplicate_unique_rejected(self, resources_table):
        _db, table = resources_table
        table.insert({"name": "a", "kind": "url"})
        pk_b = table.insert({"name": "b", "kind": "url"})
        with pytest.raises(DuplicateKeyError):
            table.update(pk_b, {"name": "a"})

    def test_update_unique_to_same_value_allowed(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url"})
        table.update(pk, {"name": "a", "quality": 0.4})

    def test_delete_returns_row(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url"})
        row = table.delete(pk)
        assert row["name"] == "a"
        assert not table.contains(pk)

    def test_delete_missing_raises(self, resources_table):
        _db, table = resources_table
        with pytest.raises(RowNotFoundError):
            table.delete(1)

    def test_upsert_inserts_then_updates(self, resources_table):
        _db, table = resources_table
        pk = table.upsert({"name": "a", "kind": "url"})
        table.upsert({"id": pk, "name": "a", "kind": "image"})
        assert table.get(pk)["kind"] == "image"
        assert len(table) == 1


class TestIndexMaintenance:
    def test_indexes_follow_updates(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url", "quality": 0.2})
        table.update(pk, {"kind": "image", "quality": 0.8})
        assert table.index_for("kind").lookup("url") == set()
        assert table.index_for("kind").lookup("image") == {pk}
        assert table.index_for("quality").lookup(0.8) == {pk}

    def test_indexes_follow_deletes(self, resources_table):
        _db, table = resources_table
        pk = table.insert({"name": "a", "kind": "url"})
        table.delete(pk)
        assert table.index_for("kind").lookup("url") == set()

    def test_create_index_backfills(self, resources_table):
        _db, table = resources_table
        for index in range(5):
            table.insert({"name": f"r{index}", "kind": "url"})
        table.create_index("name", kind="hash")
        assert table.index_for("name").lookup("r3") == {4}

    def test_json_columns_not_indexable(self, resources_table):
        _db, table = resources_table
        with pytest.raises(SchemaError, match="JSON"):
            table.create_index("meta")

    def test_unknown_column_not_indexable(self, resources_table):
        _db, table = resources_table
        with pytest.raises(UnknownColumnError):
            table.create_index("bogus")

    def test_verify_indexes_passes_after_churn(self, resources_table):
        _db, table = resources_table
        for index in range(20):
            table.insert({"name": f"r{index}", "kind": ("url", "image")[index % 2]})
        for pk in range(1, 11):
            table.update(pk, {"kind": "video"})
        for pk in range(11, 16):
            table.delete(pk)
        table.verify_indexes()

    def test_scan_order_and_len(self, resources_table):
        _db, table = resources_table
        for index in range(5):
            table.insert({"name": f"r{index}", "kind": "url"})
        assert [row["id"] for row in table.scan()] == [1, 2, 3, 4, 5]
        assert len(table) == 5
