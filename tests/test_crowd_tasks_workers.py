"""Unit tests: task lifecycle, workers, approval, payments."""

import pytest

from repro.crowd import (
    AgreementApprovalPolicy,
    ApprovalBook,
    CrowdWorker,
    PaymentLedger,
    TaggingTask,
    TaskState,
)
from repro.errors import ApprovalError, LedgerError, PlatformError
from repro.taggers import preset
from repro.tagging import Post, TaggedResource


class TestTaskLifecycle:
    def make(self) -> TaggingTask:
        return TaggingTask(project_id=1, resource_id=7, pay=0.05)

    def test_happy_path(self):
        task = self.make()
        task.publish()
        task.assign(worker_id=42)
        task.submit(Post.from_tags(7, 42, [0]), at=1.5)
        task.approve(at=2.0)
        assert task.state is TaskState.APPROVED
        assert task.payable
        assert task.terminal

    def test_rejection_path(self):
        task = self.make()
        task.publish()
        task.assign(42)
        task.submit(Post.from_tags(7, 42, [0]))
        task.reject()
        assert task.state is TaskState.REJECTED
        assert not task.payable

    def test_illegal_transitions(self):
        task = self.make()
        with pytest.raises(PlatformError, match="illegal transition"):
            task.approve()
        task.publish()
        with pytest.raises(PlatformError):
            task.submit(Post.from_tags(7, 42, [0]))
        task.assign(42)
        task.submit(Post.from_tags(7, 42, [0]))
        with pytest.raises(PlatformError):
            task.publish()

    def test_post_must_match_resource(self):
        task = self.make()
        task.publish()
        task.assign(42)
        with pytest.raises(PlatformError, match="targets resource"):
            task.submit(Post.from_tags(8, 42, [0]))

    def test_cancel_and_expire(self):
        task = self.make()
        task.cancel()
        assert task.state is TaskState.CANCELLED
        other = self.make()
        other.publish()
        other.expire()
        assert other.terminal

    def test_negative_pay_rejected(self):
        with pytest.raises(PlatformError):
            TaggingTask(project_id=1, resource_id=1, pay=-0.01)

    def test_unique_task_ids(self):
        assert self.make().task_id != self.make().task_id


class TestWorker:
    def test_smoothed_approval_rate(self):
        worker = CrowdWorker(worker_id=1, profile=preset("casual"))
        assert worker.approval_rate == pytest.approx(0.8)  # prior only
        worker.record_approval(0.05)
        assert worker.approval_rate > 0.8
        worker.record_rejection()
        assert worker.completed == 2

    def test_earnings_accumulate(self):
        worker = CrowdWorker(worker_id=1, profile=preset("casual"))
        worker.record_approval(0.05)
        worker.record_approval(0.10)
        assert worker.earned == pytest.approx(0.15)

    def test_qualification(self):
        worker = CrowdWorker(worker_id=1, profile=preset("spammer"))
        for _ in range(20):
            worker.record_rejection()
        assert not worker.qualifies(0.5)
        worker.deactivate()
        assert not worker.qualifies(0.0)

    def test_negative_pay_rejected(self):
        worker = CrowdWorker(worker_id=1, profile=preset("casual"))
        with pytest.raises(PlatformError):
            worker.record_approval(-1.0)


class TestApprovalPolicy:
    def make_resource(self) -> TaggedResource:
        resource = TaggedResource(1, "r")
        for _ in range(5):
            resource.add_post(Post.from_tags(1, 9, [0, 1, 2]))
        return resource

    def test_agreeing_post_approved(self):
        policy = AgreementApprovalPolicy(min_agreement=0.5)
        assert policy.should_approve(self.make_resource(), Post.from_tags(1, 9, [0, 1]))

    def test_junk_post_rejected(self):
        policy = AgreementApprovalPolicy(min_agreement=0.5)
        assert not policy.should_approve(
            self.make_resource(), Post.from_tags(1, 9, [50, 51, 52])
        )

    def test_young_resource_benefit_of_doubt(self):
        policy = AgreementApprovalPolicy(min_agreement=0.9, benefit_of_doubt_posts=3)
        young = TaggedResource(1, "young")
        young.add_post(Post.from_tags(1, 9, [0]))
        assert policy.should_approve(young, Post.from_tags(1, 9, [99]))

    def test_validation(self):
        with pytest.raises(ApprovalError):
            AgreementApprovalPolicy(min_agreement=1.5)
        with pytest.raises(ApprovalError):
            AgreementApprovalPolicy(benefit_of_doubt_posts=-1)


class TestApprovalBook:
    def test_mutual_rates(self):
        book = ApprovalBook(provider_id=1)
        for _ in range(4):
            book.record_submission()
        book.record_decision(10, True)
        book.record_decision(10, False)
        book.record_decision(11, True)
        assert book.worker_approval_rate(10) == pytest.approx(0.5)
        assert book.worker_approval_rate(11) == pytest.approx(1.0)
        assert book.worker_approval_rate(12) == pytest.approx(1.0)  # unseen
        # 3 of 4 decided, 2/3 approved.
        assert book.provider_approval_rate == pytest.approx((3 / 4) * (2 / 3))

    def test_decision_without_submission_rejected(self):
        book = ApprovalBook(provider_id=1)
        with pytest.raises(ApprovalError, match="pending"):
            book.record_decision(10, True)

    def test_fresh_book_rate_is_one(self):
        assert ApprovalBook(provider_id=1).provider_approval_rate == 1.0


class TestLedger:
    def test_pay_moves_money(self):
        ledger = PaymentLedger()
        ledger.deposit(1, 10.0)
        ledger.pay_task(1, 100, 7, 0.05, fee_rate=0.2)
        assert ledger.escrow_of(1) == pytest.approx(10.0 - 0.06)
        assert ledger.earned_by(100) == pytest.approx(0.05)
        assert ledger.platform_fees == pytest.approx(0.01)
        ledger.verify_conservation()

    def test_overdraft_rejected(self):
        ledger = PaymentLedger()
        ledger.deposit(1, 0.05)
        with pytest.raises(LedgerError, match="cannot cover"):
            ledger.pay_task(1, 100, 7, 0.05, fee_rate=0.5)

    def test_refund_full_and_partial(self):
        ledger = PaymentLedger()
        ledger.deposit(1, 5.0)
        assert ledger.refund(1, 2.0) == 2.0
        assert ledger.refund(1) == pytest.approx(3.0)
        assert ledger.escrow_of(1) == pytest.approx(0.0)
        ledger.verify_conservation()

    def test_over_refund_rejected(self):
        ledger = PaymentLedger()
        ledger.deposit(1, 1.0)
        with pytest.raises(LedgerError, match="cannot refund"):
            ledger.refund(1, 2.0)

    def test_validation(self):
        ledger = PaymentLedger()
        with pytest.raises(LedgerError):
            ledger.deposit(1, -1.0)
        ledger.deposit(1, 1.0)
        with pytest.raises(LedgerError):
            ledger.pay_task(1, 2, 3, -0.1)
        with pytest.raises(LedgerError):
            ledger.pay_task(1, 2, 3, 0.1, fee_rate=1.0)

    def test_conservation_detects_tampering(self):
        ledger = PaymentLedger()
        ledger.deposit(1, 1.0)
        ledger.platform_fees += 0.5  # corrupt the books
        with pytest.raises(LedgerError, match="conservation"):
            ledger.verify_conservation()
