"""The engine invariant linter: rule pack, suppressions, baseline,
CLI, gate — plus the meta-test that the live tree is lint-clean.

Each rule gets four fixture snippets: positive (fires), negative
(clean), suppressed (inline ``# itag-lint: disable=``), and baselined
(accepted by a committed baseline entry).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    Baseline,
    BaselineEntry,
    all_rules,
    load_source,
    render_json,
    render_text,
    rule_ids,
    run_lint,
)
from repro.analysis.lint.runner import lint_sources

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def lint_snippet(tmp_path, relpath: str, code: str, **kwargs):
    """Write one fixture module and lint the fixture package root."""
    path = tmp_path / "pkg" / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(code, encoding="utf-8")
    return run_lint([tmp_path / "pkg"], **kwargs)


def finding_rules(result):
    return {finding.rule for finding in result.findings}


class TestCopyDiscipline:
    def test_positive_copy_in_plan_iterator(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/plan.py",
            "class Scan:\n"
            "    def iter_rows_refs(self):\n"
            "        for row in self.table.scan_refs():\n"
            "            yield dict(row)\n",
        )
        assert finding_rules(result) == {"copy-discipline"}
        [finding] = result.findings
        assert finding.line == 4
        assert "dict() copy" in finding.message

    def test_positive_row_ref_mutation_anywhere(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/helper.py",
            "def poke(table, pk):\n"
            "    row = table.ref_or_none(pk)\n"
            "    row['quality'] = 1.0\n",
        )
        assert finding_rules(result) == {"copy-discipline"}

    def test_negative_copy_at_boundary_and_fresh_dict(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/plan.py",
            "class Scan:\n"
            "    def iter_rows_refs(self):\n"
            "        return self.table.scan_refs()\n"
            "    def iter_rows(self):\n"
            "        return (dict(row) for row in self.iter_rows_refs())\n"
            "def sanctioned(table, pk):\n"
            "    row = table.ref_or_none(pk)\n"
            "    row = dict(row)\n"
            "    row['quality'] = 1.0\n",
        )
        assert result.clean

    def test_suppressed(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/plan.py",
            "class Scan:\n"
            "    def iter_rows_refs(self):\n"
            "        for row in self.table.scan_refs():\n"
            "            yield dict(row)  # itag-lint: disable=copy-discipline\n",
        )
        assert result.clean
        assert len(result.suppressed) == 1

    def test_baselined(self, tmp_path):
        unchecked = lint_snippet(
            tmp_path, "store/plan.py",
            "class Scan:\n"
            "    def iter_rows_refs(self):\n"
            "        for row in self.table.scan_refs():\n"
            "            yield dict(row)\n",
        )
        [finding] = unchecked.findings
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    message=finding.message,
                    justification="fixture debt",
                )
            ]
        )
        result = run_lint([tmp_path / "pkg"], baseline=baseline)
        assert result.clean
        assert len(result.baselined) == 1
        assert not result.stale_baseline


class TestLockDiscipline:
    def test_positive_internal_mutation(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/hack.py",
            "def hack(table, pk, row):\n"
            "    table._rows[pk] = row\n"
            "    table._indexes.pop('quality')\n",
        )
        assert finding_rules(result) == {"lock-discipline"}
        assert len(result.findings) == 2

    def test_positive_fsync_under_rwlock(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/commit.py",
            "import os\n"
            "def bad(table, path, tmp):\n"
            "    with table._lock.write_locked():\n"
            "        os.replace(tmp, path)\n"
            "        os.fsync(3)\n",
        )
        assert finding_rules(result) == {"lock-discipline"}
        assert len(result.findings) == 2

    def test_negative_owner_files_and_fsync_outside_lock(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/table.py",
            "class Table:\n"
            "    def insert(self, pk, row):\n"
            "        with self._lock.write_locked():\n"
            "            self._rows[pk] = row\n"
            "def stage_then_sync(os, path, tmp, lock):\n"
            "    with lock.write_locked():\n"
            "        staged = tmp\n"
            "    os.replace(staged, path)\n",
        )
        assert result.clean

    def test_negative_own_init_storage(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/views.py",
            "class ReadView:\n"
            "    def __init__(self, rows):\n"
            "        self._rows = rows\n",
        )
        assert result.clean

    def test_positive_lockmgr_state_mutation(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/hack.py",
            "def hack(manager, owner, table):\n"
            "    manager._holders[table] = {owner: 'X'}\n"
            "    manager._waiting.pop(owner)\n"
            "    del manager._victims[owner]\n",
        )
        assert finding_rules(result) == {"lock-discipline"}
        assert len(result.findings) == 3

    def test_positive_lockmgr_row_state_mutation(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/hack.py",
            "def hack(manager, owner, table, pk):\n"
            "    manager._row_holders[table][pk] = {owner: 'X'}\n"
            "    manager._owner_row_pks.pop(owner)\n"
            "    manager._row_owner_counts[table][owner] += 1\n"
            "    del manager._row_x_counts[table]\n",
        )
        assert finding_rules(result) == {"lock-discipline"}
        assert len(result.findings) == 4

    def test_negative_lockmgr_owns_its_state(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/lockmgr.py",
            "class LockManager:\n"
            "    def release_all(self, owner):\n"
            "        self._waiting.pop(owner, None)\n"
            "        self._victims.pop(owner, None)\n"
            "        self._holders.clear()\n"
            "        self._row_holders.clear()\n"
            "        self._owner_row_pks.pop(owner, None)\n",
        )
        assert result.clean

    def test_suppressed(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/hack.py",
            "def hack(table, pk, row):\n"
            "    table._rows[pk] = row  # itag-lint: disable=lock-discipline\n",
        )
        assert result.clean
        assert len(result.suppressed) == 1


class TestDdlInTransaction:
    POSITIVE = (
        "def migrate(db):\n"
        "    with db.transaction():\n"
        "        db.create_index('quality')\n"
    )

    def test_positive(self, tmp_path):
        result = lint_snippet(tmp_path, "system/migrate.py", self.POSITIVE)
        assert finding_rules(result) == {"ddl-in-transaction"}

    def test_negative_ddl_outside(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/migrate.py",
            "def migrate(db, table):\n"
            "    db.create_table('t', None)\n"
            "    table.create_index('quality')\n"
            "    with db.transaction():\n"
            "        table.insert({})\n",
        )
        assert result.clean

    def test_suppressed_standalone_comment(self, tmp_path):
        result = lint_snippet(
            tmp_path, "system/migrate.py",
            "def migrate(db):\n"
            "    with db.transaction():\n"
            "        # itag-lint: disable=ddl-in-transaction\n"
            "        db.create_index('quality')\n",
        )
        assert result.clean
        assert len(result.suppressed) == 1

    def test_baselined_count_budget(self, tmp_path):
        """A count-1 entry accepts one occurrence; the second is new."""
        doubled = self.POSITIVE + "        db.drop_index('quality')\n"
        unchecked = lint_snippet(tmp_path, "system/migrate.py", doubled)
        assert len(unchecked.findings) == 2
        first, second = unchecked.findings
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule=first.rule, path=first.path, message=first.message
                )
            ]
        )
        result = run_lint([tmp_path / "pkg"], baseline=baseline)
        assert len(result.findings) == 1
        assert result.findings[0].message == second.message
        assert len(result.baselined) == 1


class TestExceptHygiene:
    def test_positive_bare_and_swallowed(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/oops.py",
            "def a():\n"
            "    try:\n"
            "        pass\n"
            "    except:\n"
            "        pass\n"
            "def b():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        pass\n",
        )
        assert finding_rules(result) == {"except-hygiene"}
        assert len(result.findings) == 2
        assert "bare" in result.findings[0].message
        assert "swallowed" in result.findings[1].message

    def test_negative_reraise_narrow_and_out_of_scope(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/fine.py",
            "def a():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:\n"
            "        raise\n"
            "    try:\n"
            "        pass\n"
            "    except (OSError, ValueError):\n"
            "        pass\n",
        )
        assert result.clean
        # the rule only patrols the engine/system layers
        out_of_scope = lint_snippet(
            tmp_path, "quality/loose.py",
            "def a():\n"
            "    try:\n"
            "        pass\n"
            "    except:\n"
            "        pass\n",
        )
        assert out_of_scope.clean

    def test_suppressed(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/oops.py",
            "def a():\n"
            "    try:\n"
            "        pass\n"
            "    except Exception:  # itag-lint: disable=except-hygiene\n"
            "        pass\n",
        )
        assert result.clean


class TestApiBoundary:
    def test_positive_return_yield_leaks(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/query.py",
            "class Query:\n"
            "    def all_fast(self):\n"
            "        return list(self._iter_row_refs())\n"
            "    def rows(self):\n"
            "        return [row for row in self._iter_row_refs()]\n"
            "    def __iter__(self):\n"
            "        for row in self._iter_row_refs():\n"
            "            yield row\n",
        )
        assert finding_rules(result) == {"api-boundary"}
        assert len(result.findings) == 3

    def test_negative_private_projected_and_other_classes(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/query.py",
            "class Query:\n"
            "    def _iter_row_refs(self):\n"
            "        return self._build_plan().iter_rows_refs()\n"
            "    def pks(self):\n"
            "        return [row['id'] for row in self._iter_row_refs()]\n"
            "    def count(self):\n"
            "        return sum(1 for _ in self._iter_row_refs())\n"
            "    def all(self):\n"
            "        return list(self._execute())\n"
            "class NotAQuery:\n"
            "    def leak(self):\n"
            "        return list(self._iter_row_refs())\n",
        )
        assert result.clean

    def test_suppressed(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/query.py",
            "class JoinQuery:\n"
            "    def leak(self):\n"
            "        return self._iter_row_refs()  # itag-lint: disable=api-boundary\n",
        )
        assert result.clean


class TestFrameworkMechanics:
    def test_rule_registry_is_the_shipped_pack(self):
        assert rule_ids() == [
            "api-boundary",
            "copy-discipline",
            "ddl-in-transaction",
            "except-hygiene",
            "lock-discipline",
        ]
        for rule in all_rules():
            assert rule.summary and rule.hint

    def test_rule_filter(self, tmp_path):
        code = (
            "def hack(table, pk, row):\n"
            "    try:\n"
            "        table._rows[pk] = row\n"
            "    except Exception:\n"
            "        pass\n"
        )
        both = lint_snippet(tmp_path, "store/hack.py", code)
        assert finding_rules(both) == {"lock-discipline", "except-hygiene"}
        only = lint_snippet(
            tmp_path, "store/hack.py", code, rule_ids=["except-hygiene"]
        )
        assert finding_rules(only) == {"except-hygiene"}

    def test_syntax_error_is_reported(self, tmp_path):
        result = lint_snippet(tmp_path, "store/broken.py", "def broken(:\n")
        assert [finding.rule for finding in result.findings] == ["syntax-error"]

    def test_stale_baseline_reported(self, tmp_path):
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule="except-hygiene",
                    path="pkg/store/paid.py",
                    message="bare 'except:' (catches SystemExit/KeyboardInterrupt)",
                )
            ]
        )
        result = lint_snippet(
            tmp_path, "store/paid.py", "x = 1\n", baseline=baseline
        )
        assert result.clean
        assert len(result.stale_baseline) == 1
        assert "stale baseline" in render_text(result)

    def test_baseline_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule="copy-discipline",
                    path="pkg/store/plan.py",
                    message="m",
                    count=2,
                    justification="because",
                )
            ]
        )
        baseline.save(path)
        loaded = Baseline.load(path)
        assert [entry.to_dict() for entry in loaded.entries] == [
            entry.to_dict() for entry in baseline.entries
        ]

    def test_json_report_shape(self, tmp_path):
        result = lint_snippet(
            tmp_path, "store/oops.py",
            "def a():\n    try:\n        pass\n    except:\n        pass\n",
        )
        payload = json.loads(render_json(result))
        assert payload["clean"] is False
        [finding] = payload["findings"]
        assert set(finding) == {"rule", "path", "line", "message", "hint"}
        assert finding["path"].endswith("store/oops.py")
        assert finding["line"] == 4

    def test_cli_lint_json_and_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "pkg" / "store"
        bad.mkdir(parents=True)
        (bad / "oops.py").write_text(
            "def a():\n    try:\n        pass\n    except:\n        pass\n",
            encoding="utf-8",
        )
        code = main(
            ["lint", str(tmp_path / "pkg"), "--baseline", "ignore",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["findings"][0]["rule"] == "except-hygiene"
        (bad / "oops.py").write_text("x = 1\n", encoding="utf-8")
        assert main(["lint", str(tmp_path / "pkg"), "--baseline", "ignore"]) == 0

    def test_cli_baseline_update_then_clean(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "pkg" / "store"
        bad.mkdir(parents=True)
        (bad / "oops.py").write_text(
            "def a():\n    try:\n        pass\n    except:\n        pass\n",
            encoding="utf-8",
        )
        baseline_file = tmp_path / "baseline.json"
        args = ["lint", str(tmp_path / "pkg"), "--baseline-file", str(baseline_file)]
        assert main(args) == 1
        assert main(args + ["--baseline", "update"]) == 0
        assert baseline_file.exists()
        capsys.readouterr()
        assert main(args) == 0


class TestLiveTree:
    """The shipped tree must be lint-clean modulo the committed baseline."""

    def test_src_tree_clean_with_committed_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        result = run_lint([SRC_ROOT], baseline=baseline)
        assert result.clean, render_text(result)
        # the committed baseline carries no stale (already-paid) entries
        assert not result.stale_baseline, render_text(result)
        # every accepted entry documents why it is acceptable
        assert all(entry.justification for entry in baseline.entries)

    def test_gate_fails_on_seeded_violation(self):
        """lint_gate semantics: a fresh violation in the live tree is a
        new finding even with the committed baseline applied."""
        import ast

        from repro.analysis.lint.walker import SourceFile, collect_sources

        sources = collect_sources(SRC_ROOT)
        evil = "def hack(table, pk, row):\n    table._rows[pk] = row\n"
        sources.append(
            SourceFile(
                path=SRC_ROOT / "system" / "seeded.py",
                relpath="repro/system/seeded.py",
                text=evil,
                tree=ast.parse(evil),
            )
        )
        baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
        result = lint_sources(sources, baseline=baseline)
        assert not result.clean
        assert finding_rules(result) == {"lock-discipline"}

    def test_lint_gate_script_passes_on_shipped_tree(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "lint_gate", REPO_ROOT / "scripts" / "lint_gate.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main([]) == 0
