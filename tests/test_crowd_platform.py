"""Unit tests: platform simulators (publish/tick/collect, pools, fees)."""

import numpy as np
import pytest

from repro.crowd import (
    CrowdPlatform,
    CrowdWorker,
    MTurkPlatform,
    SocialPlatform,
    TaggingTask,
    TaskState,
)
from repro.errors import PlatformError
from repro.taggers import NoiseModel, preset
from repro.tagging import TaggedResource, Vocabulary


def make_platform(*, pool=3, min_approval=0.0, latency=1.0):
    vocabulary = Vocabulary([f"t{i}" for i in range(10)])
    noise = NoiseModel.with_typo_tags(vocabulary, 2)
    workers = [
        CrowdWorker(worker_id=100 + index, profile=preset("casual"))
        for index in range(pool)
    ]
    platform = CrowdPlatform(
        workers, noise, np.random.default_rng(0),
        min_approval_rate=min_approval, mean_latency=latency,
    )
    theta = np.zeros(len(vocabulary))
    theta[:3] = [0.5, 0.3, 0.2]
    resource = TaggedResource(7, "r", theta=theta)
    platform.register_resource(resource)
    return platform, resource


class TestPublishTickCollect:
    def test_async_flow(self):
        platform, _resource = make_platform()
        task = TaggingTask(project_id=1, resource_id=7, pay=0.05)
        platform.publish(task)
        assert task.state is TaskState.ASSIGNED
        assert platform.pending_count() == 1
        completed = platform.tick(1000.0)
        assert completed == 1
        drained = platform.collect()
        assert drained == [task]
        assert task.post is not None
        assert task.post.resource_id == 7

    def test_tick_respects_due_times(self):
        platform, _resource = make_platform(latency=10.0)
        for _ in range(5):
            platform.publish(TaggingTask(project_id=1, resource_id=7, pay=0.01))
        early = platform.tick(0.001)
        late = platform.tick(10_000.0)
        assert early + late == 5
        assert late >= 1

    def test_clock_monotone(self):
        platform, _resource = make_platform()
        platform.tick(5.0)
        with pytest.raises(PlatformError, match="backwards"):
            platform.tick(1.0)

    def test_execute_synchronous(self):
        platform, _resource = make_platform()
        task = TaggingTask(project_id=1, resource_id=7, pay=0.05)
        platform.execute(task)
        assert task.state is TaskState.SUBMITTED
        assert platform.collect() == []  # execute removes its own task

    def test_execute_preserves_other_pending(self):
        platform, _resource = make_platform(latency=5.0)
        other = TaggingTask(project_id=1, resource_id=7, pay=0.01)
        platform.publish(other)
        task = TaggingTask(project_id=1, resource_id=7, pay=0.01)
        platform.execute(task)
        # `other` may or may not have completed depending on latency draw,
        # but it must never be lost.
        assert platform.pending_count() + len(platform.collect()) == 1

    def test_unregistered_resource_rejected(self):
        platform, _resource = make_platform()
        with pytest.raises(PlatformError, match="not registered"):
            platform.publish(TaggingTask(project_id=1, resource_id=99, pay=0.01))

    def test_stats_track_flow(self):
        platform, _resource = make_platform()
        for _ in range(3):
            platform.execute(TaggingTask(project_id=1, resource_id=7, pay=0.01))
        assert platform.stats.published == 3
        assert platform.stats.submitted == 3


class TestQualification:
    def test_unqualified_workers_skipped(self):
        # Fresh workers start at the 0.8 Beta prior, so a 0.5 bar keeps
        # them hirable while the rejected worker falls below it.
        platform, _resource = make_platform(pool=2, min_approval=0.5)
        bad = platform.workers()[0]
        for _ in range(30):
            bad.record_rejection()
        qualified = platform.qualified_workers()
        assert bad not in qualified
        assert len(qualified) == 1

    def test_no_qualified_workers_raises(self):
        platform, _resource = make_platform(pool=1, min_approval=0.99)
        worker = platform.workers()[0]
        for _ in range(50):
            worker.record_rejection()
        with pytest.raises(PlatformError, match="no qualified workers"):
            platform.publish(TaggingTask(project_id=1, resource_id=7, pay=0.01))

    def test_empty_pool_rejected(self):
        vocabulary = Vocabulary(["a"])
        noise = NoiseModel.with_typo_tags(vocabulary, 1)
        with pytest.raises(PlatformError, match="at least one worker"):
            CrowdPlatform([], noise, np.random.default_rng(0))


class TestPresetPlatforms:
    def test_mturk_pool_composition(self):
        vocabulary = Vocabulary([f"t{i}" for i in range(5)])
        noise = NoiseModel.with_typo_tags(vocabulary, 1)
        platform = MTurkPlatform(noise, np.random.default_rng(1), pool_size=200)
        profiles = [worker.profile.name for worker in platform.workers()]
        assert profiles.count("casual") > profiles.count("expert")
        assert platform.fee_rate == 0.20

    def test_social_pool_is_expert_heavy(self):
        vocabulary = Vocabulary([f"t{i}" for i in range(5)])
        noise = NoiseModel.with_typo_tags(vocabulary, 1)
        platform = SocialPlatform(noise, np.random.default_rng(1), pool_size=100)
        profiles = [worker.profile.name for worker in platform.workers()]
        assert profiles.count("expert") > profiles.count("sloppy")
        assert platform.fee_rate == 0.0
        assert platform.mean_latency > 1.0

    def test_worker_id_namespaces_disjoint(self):
        vocabulary = Vocabulary([f"t{i}" for i in range(5)])
        noise = NoiseModel.with_typo_tags(vocabulary, 1)
        mturk = MTurkPlatform(noise, np.random.default_rng(1), pool_size=10)
        social = SocialPlatform(noise, np.random.default_rng(1), pool_size=10)
        mturk_ids = {worker.worker_id for worker in mturk.workers()}
        social_ids = {worker.worker_id for worker in social.workers()}
        assert mturk_ids.isdisjoint(social_ids)
