"""Tests for planned joins (Query.join -> HashJoin / IndexNestedLoopJoin).

Two layers:

- targeted assertions that the join planner picks the documented
  strategy (index nested-loop when the right key is indexed and the
  left side is small; hash join with the build on the smaller side
  otherwise) and that SQL NULL/unhashable key semantics hold;
- hypothesis property tests that every planned join — both strategies,
  inner and left-outer, with and without a right-side filter — produces
  exactly the rows a brute-force nested loop produces.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import (
    Column,
    Database,
    DataType,
    Eq,
    Ne,
    Query,
    QueryError,
    Schema,
)
from repro.store.plan import order_key

# ----------------------------------------------------------------------
# fixtures / helpers
# ----------------------------------------------------------------------


def _build_pair(left_rows, right_rows, layout):
    """Two joinable tables; ``layout`` indexes right.rkey (or not)."""
    database = Database("join")
    left = database.create_table(
        "lhs",
        Schema(
            [
                Column("id", DataType.INT),
                Column("key", DataType.INT, nullable=True),
                Column("kind", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    right = database.create_table(
        "rhs",
        Schema(
            [
                Column("id", DataType.INT),
                Column("rkey", DataType.INT, nullable=True),
                Column("tag", DataType.TEXT),
            ],
            primary_key="id",
        ),
    )
    if layout in ("hash", "sorted"):
        right.create_index("rkey", kind=layout)
    for key, kind in left_rows:
        left.insert({"key": key, "kind": kind})
    for rkey, tag in right_rows:
        right.insert({"rkey": rkey, "tag": tag})
    return left, right


def _brute_join(left_rows, right_rows, *, left_key, right_key, how,
                prefix_left="", prefix_right="", right_columns=()):
    """Nested-loop reference with SQL NULL-key semantics."""
    out = []
    for left in left_rows:
        matches = [
            right
            for right in right_rows
            if left[left_key] is not None
            and right[right_key] is not None
            and left[left_key] == right[right_key]
        ]
        renamed = {f"{prefix_left}{k}": v for k, v in left.items()}
        if matches:
            for right in matches:
                combined = dict(renamed)
                combined.update({f"{prefix_right}{k}": v for k, v in right.items()})
                out.append(combined)
        elif how == "left":
            combined = dict(renamed)
            combined.update({f"{prefix_right}{k}": None for k in right_columns})
            out.append(combined)
    return out


def _canonical(rows, right_id="r_id"):
    return sorted(
        rows, key=lambda row: (row["l_id"], order_key(row.get(right_id)))
    )


# ----------------------------------------------------------------------
# strategy selection / explain
# ----------------------------------------------------------------------


class TestJoinPlanning:
    def test_small_left_with_indexed_right_key_uses_index_nl(self):
        left, right = _build_pair(
            [(1, "rare")] + [(None, "common")] * 20,
            [(1, "x")] * 3 + [(2, "y")] * 40,
            "hash",
        )
        left.create_index("kind", kind="hash")
        join = Query(left).where(Eq("kind", "rare")).join(right, on=("key", "rkey"))
        plan = join.explain()
        assert plan.splitlines()[0].startswith("index-nl-join")
        assert "via hash-index" in plan
        assert join.count() == 3

    def test_right_pk_join_probes_by_primary_key(self):
        left, right = _build_pair([(1, "a"), (2, "a")], [(9, "x"), (9, "y")], "none")
        join = Query(left).join(right, on=("key", "id"), prefix_right="r_")
        plan = join.explain()
        assert "via pk" in plan
        assert {row["r_id"] for row in join.all()} == {1, 2}

    def test_unindexed_right_key_falls_back_to_hash_join(self):
        left, right = _build_pair([(1, "a")], [(1, "x")], "none")
        plan = Query(left).join(right, on=("key", "rkey")).explain()
        assert plan.splitlines()[0].startswith("hash-join")

    def test_large_left_prefers_hash_join_with_smaller_build_side(self):
        left, right = _build_pair(
            [(1, "a")] * 40, [(1, "x"), (2, "y")], "hash"
        )
        # probing 40 left rows costs more than building 2 right rows
        plan = Query(left).join(right, on=("key", "rkey")).explain()
        assert plan.splitlines()[0].startswith("hash-join")
        assert "build=right" in plan

    def test_left_outer_join_pins_build_side_right(self):
        left, right = _build_pair([(1, "a"), (2, "b")] * 20, [(1, "x")], "none")
        join = Query(left).join(right, on=("key", "rkey"), how="left", prefix_right="r_")
        assert "build=right" in join.explain()
        rows = join.all()
        assert len(rows) == 40
        assert sum(1 for row in rows if row["r_id"] is None) == 20

    def test_ordered_left_input_preserves_order(self):
        left, right = _build_pair(
            [(3, "a"), (1, "a"), (2, "a")], [(1, "x"), (2, "y"), (3, "z")], "none"
        )
        join = (
            Query(left)
            .order_by("key", descending=True)
            .join(right, on=("key", "rkey"), prefix_right="r_")
        )
        assert [row["key"] for row in join.all()] == [3, 2, 1]

    def test_join_validates_keys_and_how(self):
        left, right = _build_pair([], [], "none")
        with pytest.raises(QueryError):
            Query(left).join(right, on=("key", "rkey"), how="outer")
        with pytest.raises(Exception):
            Query(left).join(right, on=("bogus", "rkey"))
        with pytest.raises(Exception):
            Query(left).join(right, on=("key", "bogus"))
        with pytest.raises(QueryError):
            Query(left).limit(3).join(right, on=("key", "rkey"))

    def test_join_window_and_post_filter(self):
        left, right = _build_pair(
            [(1, "a"), (2, "a"), (3, "a")],
            [(1, "x"), (2, "y"), (3, "x")],
            "hash",
        )
        join = (
            Query(left)
            .join(right, on=("key", "rkey"), prefix_right="r_")
            .where(Eq("r_tag", "x"))
        )
        assert "filter" in join.explain()
        assert {row["r_rkey"] for row in join.all()} == {1, 3}
        assert join.limit(1).count() == 1

    def test_join_streams_without_materializing(self):
        left, right = _build_pair([(1, "a")] * 5, [(1, "x")], "hash")
        iterator = iter(Query(left).join(right, on=("key", "rkey"), prefix_right="r_"))
        assert next(iterator)["r_tag"] == "x"


class TestJoinKeySemantics:
    def test_none_keys_never_match(self):
        left, right = _build_pair(
            [(None, "a"), (1, "b")], [(None, "x"), (1, "y")], "hash"
        )
        rows = Query(left).join(right, on=("key", "rkey"), prefix_right="r_").all()
        assert len(rows) == 1
        assert rows[0]["kind"] == "b"

    def test_none_left_keys_padded_under_left_join(self):
        left, right = _build_pair([(None, "a")], [(None, "x")], "none")
        rows = (
            Query(left)
            .join(right, on=("key", "rkey"), how="left", prefix_right="r_")
            .all()
        )
        assert rows == [
            {"id": 1, "key": None, "kind": "a",
             "r_id": None, "r_rkey": None, "r_tag": None}
        ]

    def test_unhashable_json_keys_fall_back_to_nested_loop(self):
        database = Database("json-join")
        left = database.create_table(
            "lhs",
            Schema(
                [Column("id", DataType.INT), Column("payload", DataType.JSON)],
                primary_key="id",
            ),
        )
        right = database.create_table(
            "rhs",
            Schema(
                [Column("id", DataType.INT), Column("payload", DataType.JSON)],
                primary_key="id",
            ),
        )
        left.insert({"payload": ["a", "b"]})
        left.insert({"payload": ["c"]})
        right.insert({"payload": ["a", "b"]})
        right.insert({"payload": ["z"]})
        rows = Query(left).join(right, on="payload", prefix_right="r_").all()
        assert len(rows) == 1
        assert rows[0]["payload"] == ["a", "b"]
        assert rows[0]["r_id"] == 1


# ----------------------------------------------------------------------
# property tests: planned joins agree with brute force
# ----------------------------------------------------------------------

_KEYS = (None, 1, 2, 3, 4)
_side = st.lists(
    st.tuples(st.sampled_from(_KEYS), st.sampled_from(("a", "b"))),
    max_size=12,
)
_LAYOUTS = ("none", "hash", "sorted", "pk")


@given(
    left_rows=_side,
    right_rows=_side,
    layout=st.sampled_from(_LAYOUTS),
    how=st.sampled_from(("inner", "left")),
    filter_left=st.booleans(),
    filter_right=st.booleans(),
)
@settings(max_examples=120, deadline=None)
def test_planned_joins_agree_with_brute_force(
    left_rows, right_rows, layout, how, filter_left, filter_right
):
    left, right = _build_pair(left_rows, right_rows, layout)
    right_key = "id" if layout == "pk" else "rkey"
    left_query = Query(left)
    if filter_left:
        left_query = left_query.where(Ne("kind", "b"))
    right_input = (
        Query(right).where(Ne("tag", "b")) if filter_right else right
    )
    join = left_query.join(
        right_input, on=("key", right_key),
        how=how, prefix_left="l_", prefix_right="r_",
    )
    left_brute = [
        row for row in left.scan() if not filter_left or row["kind"] != "b"
    ]
    right_brute = [
        row for row in right.scan() if not filter_right or row["tag"] != "b"
    ]
    expected = _brute_join(
        left_brute, right_brute, left_key="key", right_key=right_key, how=how,
        prefix_left="l_", prefix_right="r_",
        right_columns=("id", "rkey", "tag"),
    )
    got = join.all()
    assert _canonical(got) == _canonical(expected)
    assert join.count() == len(expected)
    assert join.exists() is (len(expected) > 0)
    # a second execution sees identical rows (no builder-state mutation)
    assert _canonical(join.all()) == _canonical(expected)
