"""Unit tests: tables, ASCII plots, aggregation."""

import pytest

from repro.analysis import (
    SeriesStats,
    aggregate,
    line_plot,
    mean_std,
    multi_line_plot,
    render_markdown_table,
    render_table,
    sparkline,
)


class TestTables:
    def test_alignment_and_rule(self):
        text = render_table(["name", "v"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_float_formatting(self):
        text = render_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="row has"):
            render_table(["a", "b"], [[1]])

    def test_markdown_table(self):
        text = render_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert text.splitlines()[1] == "|---|---|"


class TestPlots:
    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert len(sparkline([1, 2, 3])) == 3
        assert sparkline([5, 5, 5]) == "▄▄▄"
        rising = sparkline([0, 1, 2, 3])
        assert rising[0] == "▁" and rising[-1] == "█"

    def test_line_plot_contains_markers_and_labels(self):
        text = line_plot([0.0, 1.0, 2.0], [0.0, 0.5, 1.0], label="q")
        assert "Q" in text
        assert "1.000" in text and "0.000" in text

    def test_multi_line_distinct_markers(self):
        text = multi_line_plot(
            [0.0, 1.0],
            {"fp": [0.1, 0.5], "fc": [0.1, 0.2]},
            width=20,
            height=5,
        )
        legend = text.splitlines()[-1]
        assert "F=fc" in legend
        assert "0=fp" in legend or "P=fp" in legend  # dedup fallback

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            multi_line_plot([0.0, 1.0], {"x": [0.1]})

    def test_empty_input(self):
        assert multi_line_plot([], {}) == "(no data)"

    def test_constant_series_no_crash(self):
        text = line_plot([0.0, 1.0], [0.5, 0.5])
        assert "|" in text


class TestAggregation:
    def test_mean_std(self):
        mean, std = mean_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx((2 / 3) ** 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_aggregate_and_format(self):
        stats = aggregate([1.0, 1.0, 1.0])
        assert stats == SeriesStats(mean=1.0, std=0.0, n=3)
        assert "n=3" in str(stats)
        assert stats.ci95_half_width == 0.0
        assert SeriesStats(1.0, 0.0, 1).ci95_half_width == 0.0
