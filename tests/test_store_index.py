"""Unit tests: hash and sorted secondary indexes."""

from repro.store import HashIndex, SortedIndex


class TestHashIndex:
    def test_add_lookup(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.add("url", 2)
        index.add("image", 3)
        assert index.lookup("url") == {1, 2}
        assert index.lookup("image") == {3}
        assert index.lookup("video") == set()

    def test_remove(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.add("url", 2)
        index.remove("url", 1)
        assert index.lookup("url") == {2}

    def test_remove_last_drops_bucket(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.remove("url", 1)
        assert index.distinct_values() == []

    def test_remove_missing_is_noop(self):
        index = HashIndex("kind")
        index.remove("url", 1)
        assert len(index) == 0

    def test_none_values_indexable(self):
        index = HashIndex("kind")
        index.add(None, 1)
        assert index.lookup(None) == {1}

    def test_lookup_many(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("b", 2)
        index.add("c", 3)
        assert index.lookup_many(iter(["a", "c", "z"])) == {1, 3}

    def test_len_counts_entries(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("a", 2)
        index.add("b", 3)
        assert len(index) == 3


class TestSortedIndex:
    def build(self) -> SortedIndex:
        index = SortedIndex("quality")
        for pk, value in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.5), (5, None)]:
            index.add(value, pk)
        return index

    def test_lookup_exact(self):
        index = self.build()
        assert index.lookup(0.5) == {1, 4}
        assert index.lookup(None) == {5}

    def test_range_inclusive(self):
        index = self.build()
        assert set(index.range(0.1, 0.5)) == {1, 2, 4}

    def test_range_exclusive_bounds(self):
        index = self.build()
        assert set(index.range(0.1, 0.5, include_low=False)) == {1, 4}
        assert set(index.range(0.1, 0.5, include_high=False)) == {2}

    def test_range_unbounded(self):
        index = self.build()
        assert set(index.range()) == {1, 2, 3, 4}  # None excluded
        assert set(index.range(low=0.6)) == {3}
        assert set(index.range(high=0.2)) == {2}

    def test_range_returns_value_order(self):
        index = self.build()
        assert index.range() == [2, 1, 4, 3]

    def test_min_max_pks(self):
        index = self.build()
        assert index.min_pks(2) == [2, 1]
        assert index.max_pks(2) == [3, 4]
        assert index.max_pks(0) == []

    def test_remove(self):
        index = self.build()
        index.remove(0.5, 1)
        assert index.lookup(0.5) == {4}
        index.remove(None, 5)
        assert index.lookup(None) == set()

    def test_duplicate_values_with_many_pks(self):
        index = SortedIndex("v")
        for pk in range(50):
            index.add(1.0, pk)
        assert index.lookup(1.0) == set(range(50))
        index.remove(1.0, 25)
        assert 25 not in index.lookup(1.0)

    def test_mixed_int_str_pks(self):
        index = SortedIndex("v")
        index.add(1.0, 5)
        index.add(1.0, "abc")
        assert index.lookup(1.0) == {5, "abc"}


class TestLazyIterators:
    def test_hash_iter_eq_streams_insertion_order(self):
        index = HashIndex("kind")
        for pk in (3, 1, 2):
            index.add("url", pk)
        assert list(index.iter_eq("url")) == [3, 1, 2]
        assert list(index.iter_eq("missing")) == []

    def test_hash_iter_in_dedupes_values_not_pks(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("b", 2)
        assert list(index.iter_in(["a", "a", "b", "z"])) == [1, 2]
        assert index.estimate_in(["a", "a", "b"]) == 2

    def test_lookup_many_accepts_any_iterable(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("c", 3)
        assert index.lookup_many(["a", "c", "z"]) == {1, 3}
        assert index.lookup_many(("z", "q")) == set()

    def test_contains_entry(self):
        index = HashIndex("kind")
        index.add("a", 1)
        assert index.contains_entry("a", 1)
        assert not index.contains_entry("a", 2)
        assert not index.contains_entry("b", 1)

    def test_sorted_iter_eq_and_iter_range(self):
        index = SortedIndex("q")
        for pk, value in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.5), (5, None)]:
            index.add(value, pk)
        assert list(index.iter_eq(0.5)) == [1, 4]
        assert list(index.iter_eq(None)) == [5]
        assert list(index.iter_range(0.1, 0.5)) == [2, 1, 4]
        assert list(index.iter_range(0.2, 0.5, include_high=False)) == []
        assert index.contains_entry(0.5, 4)
        assert not index.contains_entry(0.5, 9)
        assert index.contains_entry(None, 5)


class TestMaintainedDistinct:
    def test_counter_tracks_adds_and_removes(self):
        index = SortedIndex("q")
        assert index.n_distinct() == 0
        index.add(0.5, 1)
        index.add(0.5, 2)
        index.add(0.9, 3)
        index.add(None, 4)
        assert index.n_distinct() == 3 == index.recount_distinct()
        index.remove(0.5, 1)
        assert index.n_distinct() == 3 == index.recount_distinct()
        index.remove(0.5, 2)
        index.remove(None, 4)
        assert index.n_distinct() == 1 == index.recount_distinct()
        index.clear()
        assert index.n_distinct() == 0 == index.recount_distinct()


class TestIndexSnapshots:
    def test_hash_snapshot_is_frozen_and_cheap_generations(self):
        index = HashIndex("kind")
        index.add("a", 1)
        snap = index.snapshot()
        index.add("a", 2)
        index.add("b", 3)
        index.remove("a", 1)
        assert snap.lookup("a") == {1}
        assert snap.n_distinct() == 1
        assert len(snap) == 1
        assert index.lookup("a") == {2}
        assert index.lookup("b") == {3}
        assert len(index) == 2

    def test_sorted_snapshot_is_frozen(self):
        index = SortedIndex("q")
        index.add(0.1, 1)
        index.add(None, 2)
        snap = index.snapshot()
        index.add(0.2, 3)
        index.remove(None, 2)
        assert snap.range() == [1]
        assert snap.lookup(None) == {2}
        assert snap.n_distinct() == 2
        assert index.range() == [1, 3]
        assert index.lookup(None) == set()

    def test_snapshots_have_no_mutation_methods(self):
        import pytest

        for snap in (HashIndex("k").snapshot(), SortedIndex("k").snapshot()):
            with pytest.raises(AttributeError):
                snap.add("x", 1)
            with pytest.raises(AttributeError):
                snap.remove("x", 1)

    def test_clear_after_snapshot_keeps_snapshot(self):
        index = HashIndex("kind")
        index.add("a", 1)
        snap = index.snapshot()
        index.clear()
        assert snap.lookup("a") == {1}
        assert len(index) == 0
