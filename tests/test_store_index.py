"""Unit tests: hash and sorted secondary indexes."""

from repro.store import HashIndex, SortedIndex


class TestHashIndex:
    def test_add_lookup(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.add("url", 2)
        index.add("image", 3)
        assert index.lookup("url") == {1, 2}
        assert index.lookup("image") == {3}
        assert index.lookup("video") == set()

    def test_remove(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.add("url", 2)
        index.remove("url", 1)
        assert index.lookup("url") == {2}

    def test_remove_last_drops_bucket(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.remove("url", 1)
        assert index.distinct_values() == []

    def test_remove_missing_is_noop(self):
        index = HashIndex("kind")
        index.remove("url", 1)
        assert len(index) == 0

    def test_none_values_indexable(self):
        index = HashIndex("kind")
        index.add(None, 1)
        assert index.lookup(None) == {1}

    def test_lookup_many(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("b", 2)
        index.add("c", 3)
        assert index.lookup_many(iter(["a", "c", "z"])) == {1, 3}

    def test_len_counts_entries(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("a", 2)
        index.add("b", 3)
        assert len(index) == 3


class TestSortedIndex:
    def build(self) -> SortedIndex:
        index = SortedIndex("quality")
        for pk, value in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.5), (5, None)]:
            index.add(value, pk)
        return index

    def test_lookup_exact(self):
        index = self.build()
        assert index.lookup(0.5) == {1, 4}
        assert index.lookup(None) == {5}

    def test_range_inclusive(self):
        index = self.build()
        assert set(index.range(0.1, 0.5)) == {1, 2, 4}

    def test_range_exclusive_bounds(self):
        index = self.build()
        assert set(index.range(0.1, 0.5, include_low=False)) == {1, 4}
        assert set(index.range(0.1, 0.5, include_high=False)) == {2}

    def test_range_unbounded(self):
        index = self.build()
        assert set(index.range()) == {1, 2, 3, 4}  # None excluded
        assert set(index.range(low=0.6)) == {3}
        assert set(index.range(high=0.2)) == {2}

    def test_range_returns_value_order(self):
        index = self.build()
        assert index.range() == [2, 1, 4, 3]

    def test_min_max_pks(self):
        index = self.build()
        assert index.min_pks(2) == [2, 1]
        assert index.max_pks(2) == [3, 4]
        assert index.max_pks(0) == []

    def test_remove(self):
        index = self.build()
        index.remove(0.5, 1)
        assert index.lookup(0.5) == {4}
        index.remove(None, 5)
        assert index.lookup(None) == set()

    def test_duplicate_values_with_many_pks(self):
        index = SortedIndex("v")
        for pk in range(50):
            index.add(1.0, pk)
        assert index.lookup(1.0) == set(range(50))
        index.remove(1.0, 25)
        assert 25 not in index.lookup(1.0)

    def test_mixed_int_str_pks(self):
        index = SortedIndex("v")
        index.add(1.0, 5)
        index.add(1.0, "abc")
        assert index.lookup(1.0) == {5, "abc"}
