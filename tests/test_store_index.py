"""Unit tests: hash and sorted secondary indexes."""

from repro.store import HashIndex, SortedIndex


class TestHashIndex:
    def test_add_lookup(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.add("url", 2)
        index.add("image", 3)
        assert index.lookup("url") == {1, 2}
        assert index.lookup("image") == {3}
        assert index.lookup("video") == set()

    def test_remove(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.add("url", 2)
        index.remove("url", 1)
        assert index.lookup("url") == {2}

    def test_remove_last_drops_bucket(self):
        index = HashIndex("kind")
        index.add("url", 1)
        index.remove("url", 1)
        assert index.distinct_values() == []

    def test_remove_missing_is_noop(self):
        index = HashIndex("kind")
        index.remove("url", 1)
        assert len(index) == 0

    def test_none_values_indexable(self):
        index = HashIndex("kind")
        index.add(None, 1)
        assert index.lookup(None) == {1}

    def test_lookup_many(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("b", 2)
        index.add("c", 3)
        assert index.lookup_many(iter(["a", "c", "z"])) == {1, 3}

    def test_len_counts_entries(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("a", 2)
        index.add("b", 3)
        assert len(index) == 3


class TestSortedIndex:
    def build(self) -> SortedIndex:
        index = SortedIndex("quality")
        for pk, value in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.5), (5, None)]:
            index.add(value, pk)
        return index

    def test_lookup_exact(self):
        index = self.build()
        assert index.lookup(0.5) == {1, 4}
        assert index.lookup(None) == {5}

    def test_range_inclusive(self):
        index = self.build()
        assert set(index.range(0.1, 0.5)) == {1, 2, 4}

    def test_range_exclusive_bounds(self):
        index = self.build()
        assert set(index.range(0.1, 0.5, include_low=False)) == {1, 4}
        assert set(index.range(0.1, 0.5, include_high=False)) == {2}

    def test_range_unbounded(self):
        index = self.build()
        assert set(index.range()) == {1, 2, 3, 4}  # None excluded
        assert set(index.range(low=0.6)) == {3}
        assert set(index.range(high=0.2)) == {2}

    def test_range_returns_value_order(self):
        index = self.build()
        assert index.range() == [2, 1, 4, 3]

    def test_min_max_pks(self):
        index = self.build()
        assert index.min_pks(2) == [2, 1]
        assert index.max_pks(2) == [3, 4]
        assert index.max_pks(0) == []

    def test_remove(self):
        index = self.build()
        index.remove(0.5, 1)
        assert index.lookup(0.5) == {4}
        index.remove(None, 5)
        assert index.lookup(None) == set()

    def test_duplicate_values_with_many_pks(self):
        index = SortedIndex("v")
        for pk in range(50):
            index.add(1.0, pk)
        assert index.lookup(1.0) == set(range(50))
        index.remove(1.0, 25)
        assert 25 not in index.lookup(1.0)

    def test_mixed_int_str_pks(self):
        index = SortedIndex("v")
        index.add(1.0, 5)
        index.add(1.0, "abc")
        assert index.lookup(1.0) == {5, "abc"}


class TestLazyIterators:
    def test_hash_iter_eq_streams_insertion_order(self):
        index = HashIndex("kind")
        for pk in (3, 1, 2):
            index.add("url", pk)
        assert list(index.iter_eq("url")) == [3, 1, 2]
        assert list(index.iter_eq("missing")) == []

    def test_hash_iter_in_dedupes_values_not_pks(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("b", 2)
        assert list(index.iter_in(["a", "a", "b", "z"])) == [1, 2]
        assert index.estimate_in(["a", "a", "b"]) == 2

    def test_lookup_many_accepts_any_iterable(self):
        index = HashIndex("kind")
        index.add("a", 1)
        index.add("c", 3)
        assert index.lookup_many(["a", "c", "z"]) == {1, 3}
        assert index.lookup_many(("z", "q")) == set()

    def test_contains_entry(self):
        index = HashIndex("kind")
        index.add("a", 1)
        assert index.contains_entry("a", 1)
        assert not index.contains_entry("a", 2)
        assert not index.contains_entry("b", 1)

    def test_sorted_iter_eq_and_iter_range(self):
        index = SortedIndex("q")
        for pk, value in [(1, 0.5), (2, 0.1), (3, 0.9), (4, 0.5), (5, None)]:
            index.add(value, pk)
        assert list(index.iter_eq(0.5)) == [1, 4]
        assert list(index.iter_eq(None)) == [5]
        assert list(index.iter_range(0.1, 0.5)) == [2, 1, 4]
        assert list(index.iter_range(0.2, 0.5, include_high=False)) == []
        assert index.contains_entry(0.5, 4)
        assert not index.contains_entry(0.5, 9)
        assert index.contains_entry(None, 5)


class TestMaintainedDistinct:
    def test_counter_tracks_adds_and_removes(self):
        index = SortedIndex("q")
        assert index.n_distinct() == 0
        index.add(0.5, 1)
        index.add(0.5, 2)
        index.add(0.9, 3)
        index.add(None, 4)
        assert index.n_distinct() == 3 == index.recount_distinct()
        index.remove(0.5, 1)
        assert index.n_distinct() == 3 == index.recount_distinct()
        index.remove(0.5, 2)
        index.remove(None, 4)
        assert index.n_distinct() == 1 == index.recount_distinct()
        index.clear()
        assert index.n_distinct() == 0 == index.recount_distinct()


class TestIndexSnapshots:
    def test_hash_snapshot_is_frozen_and_cheap_generations(self):
        index = HashIndex("kind")
        index.add("a", 1)
        snap = index.snapshot()
        index.add("a", 2)
        index.add("b", 3)
        index.remove("a", 1)
        assert snap.lookup("a") == {1}
        assert snap.n_distinct() == 1
        assert len(snap) == 1
        assert index.lookup("a") == {2}
        assert index.lookup("b") == {3}
        assert len(index) == 2

    def test_sorted_snapshot_is_frozen(self):
        index = SortedIndex("q")
        index.add(0.1, 1)
        index.add(None, 2)
        snap = index.snapshot()
        index.add(0.2, 3)
        index.remove(None, 2)
        assert snap.range() == [1]
        assert snap.lookup(None) == {2}
        assert snap.n_distinct() == 2
        assert index.range() == [1, 3]
        assert index.lookup(None) == set()

    def test_snapshots_have_no_mutation_methods(self):
        import pytest

        for snap in (HashIndex("k").snapshot(), SortedIndex("k").snapshot()):
            with pytest.raises(AttributeError):
                snap.add("x", 1)
            with pytest.raises(AttributeError):
                snap.remove("x", 1)

    def test_clear_after_snapshot_keeps_snapshot(self):
        index = HashIndex("kind")
        index.add("a", 1)
        snap = index.snapshot()
        index.clear()
        assert snap.lookup("a") == {1}
        assert len(index) == 0


class TestChunkedSortedIndex:
    """The two-level chunk/spine structure behind SortedIndex."""

    def _filled(self, count, chunk_target=None):
        from repro.store.index import SORTED_CHUNK_TARGET

        index = SortedIndex.build("v", ((i, i) for i in range(count)))
        assert len(index._chunks) == -(-count // SORTED_CHUNK_TARGET)
        return index

    def test_bulk_build_matches_incremental_adds(self):
        import random

        rng = random.Random(11)
        pairs = [(rng.randrange(50), pk) for pk in range(3000)]
        built = SortedIndex.build("v", pairs)
        grown = SortedIndex("v")
        for value, pk in pairs:
            grown.add(value, pk)
        built.verify_structure()
        grown.verify_structure()
        assert list(built.iter_items()) == list(grown.iter_items())
        assert built.n_distinct() == grown.n_distinct()
        assert len(built) == len(grown)

    def test_inserts_split_overfull_chunks(self):
        from repro.store.index import SORTED_CHUNK_MAX

        index = SortedIndex("v")
        for i in range(SORTED_CHUNK_MAX + 10):
            index.add(i, i)
        index.verify_structure()
        assert len(index._chunks) >= 2
        assert list(index.iter_pks()) == list(range(SORTED_CHUNK_MAX + 10))

    def test_deletes_unlink_emptied_chunks(self):
        index = self._filled(2000)
        for i in range(2000):
            index.remove(i, i)
        index.verify_structure()
        assert index._chunks == []
        assert len(index) == 0
        assert index.n_distinct() == 0

    def test_range_and_estimates_span_chunk_boundaries(self):
        index = self._filled(2000)
        got = index.range(500, 1500)
        assert got == list(range(500, 1501))
        assert index.estimate_range(500, 1500) == len(got)
        assert index.estimate_range(1500, 500) == 0  # reversed bounds
        assert index.estimate_eq(777) == 1
        assert index.lookup(777) == {777}

    def test_duplicate_value_group_spans_chunks(self):
        from repro.store.index import SORTED_CHUNK_MAX

        count = SORTED_CHUNK_MAX + 200  # one value group > one chunk
        index = SortedIndex("v")
        for pk in range(count):
            index.add("same", pk)
        index.verify_structure()
        assert len(index._chunks) >= 2
        assert index.n_distinct() == 1
        assert index.estimate_eq("same") == count
        assert list(index.iter_eq("same")) == list(range(count))
        # descending stream keeps ties in ascending pk order
        assert list(index.iter_pks(descending=True)) == list(range(count))

    def test_snapshot_shares_chunks_until_first_touch(self):
        index = self._filled(3000)
        snap = index.snapshot()
        assert snap._chunks is index._chunks  # O(1) pin
        index.add(1500.5, 9999)  # detaches directory, privatizes 1 chunk
        assert snap._chunks is not index._chunks
        shared = sum(
            1
            for mine, theirs in zip(index._chunks, snap._chunks)
            if mine is theirs
        )
        # all but the touched chunk still shared with the snapshot
        assert shared >= len(snap._chunks) - 1
        assert 9999 not in snap.lookup(1500.5)
        assert 9999 in index.lookup(1500.5)
        index.verify_structure()
        snap.verify_structure()

    def test_snapshot_isolated_from_chunk_split(self):
        from repro.store.index import SORTED_CHUNK_MAX

        index = SortedIndex("v")
        for i in range(SORTED_CHUNK_MAX):
            index.add(i, i)
        snap = index.snapshot()
        for i in range(200):
            index.add(i + 0.5, 10_000 + i)  # forces a split
        index.verify_structure()
        snap.verify_structure()
        assert len(snap) == SORTED_CHUNK_MAX
        assert list(snap.iter_pks()) == list(range(SORTED_CHUNK_MAX))

    def test_verify_structure_catches_violations(self):
        import pytest

        index = self._filled(2000)
        index._spine[0] = index._chunks[1][-1]  # break a fencepost
        with pytest.raises(ValueError, match="fencepost"):
            index.verify_structure()

        index = self._filled(2000)
        index._size += 1
        with pytest.raises(ValueError, match="maintained size"):
            index.verify_structure()

        index = self._filled(2000)
        index._chunks[1] = []
        with pytest.raises(ValueError, match="empty chunk"):
            index.verify_structure()
