#!/usr/bin/env python
"""Perf-regression smoke gate: the EXP-ST read/commit-path claim subset.

Runs a reduced EXP-ST (small row count, no WAL) and fails — exit code
1 — if any of the gated claims regressed:

* hash-index point-query throughput (the >12k ops/sec floor, 5x the
  pre-zero-copy baseline),
* snapshot-view indexed reads within 2x of the live table (and planned
  as indexed access paths, not full scans),
* warm plan cache beating cold planning,
* maintained O(1) statistics (n_distinct counter, histogram accuracy),
* the 3-way-join order search beating the written left-deep baseline
  (so multi-way join ordering can never silently regress below the
  plans callers would have hand-written),
* cross-transaction group commit: 4 disjoint writers outpacing a
  single writer at fsync=always, and batching their commits under
  shared fsyncs (so per-table locking can never silently fall back to
  serialized commits),
* per-row locking: 4 writers on disjoint rows of the *same* table
  sustaining >1.5x the single-writer commit rate at fsync=always (so
  row-granular admission can never silently degrade back to table-level
  serialization),
* incremental checkpoints: a generation touching 1 of 64 tables
  beating a full snapshot by >5x (so checkpoint cost keeps tracking
  the dirty fraction instead of database size),
* chunked sorted-index inserts beating the flat-list seed path by >3x
  with read equivalence (so ordered-index maintenance can never
  silently fall back to O(n) memmove inserts).

Called from scripts/check.sh and as a dedicated CI step, so a
performance regression fails the merge even when it is not large
enough to break a functional test.

Usage: PYTHONPATH=src python scripts/perf_gate.py [rows]
"""

from __future__ import annotations

import sys

from repro.experiments import store_ops

#: Substrings identifying the gated claim subset in EXP-ST.
GATED_CLAIMS = (
    "zero-copy hash point queries",
    "snapshot-view indexed point queries",
    "snapshot views plan indexed access paths",
    "warm plan cache beats cold planning",
    "n_distinct is O(1)",
    "sampled histogram matches exact range selectivity",
    "searched order beats the written left-deep order",
    "cross-transaction group commit scales",
    "cross-transaction group commit batches concurrent commits",
    "per-row locking scales same-table writers",
    "incremental checkpoint at 1/64 dirty tables",
    "chunked sorted-index inserts beat the flat-list seed path",
)


def main() -> int:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    result = store_ops.run(rows=rows)
    gated = [
        claim
        for claim in result.claims
        if any(fragment in claim.claim for fragment in GATED_CLAIMS)
    ]
    if len(gated) != len(GATED_CLAIMS):
        print(
            f"perf gate: expected {len(GATED_CLAIMS)} gated claims, "
            f"found {len(gated)} — gate out of sync with EXP-ST"
        )
        return 1
    for claim in gated:
        print(claim)
    failed = [claim for claim in gated if not claim.passed]
    if failed:
        print(f"perf gate: {len(failed)} claim(s) REGRESSED")
        return 1
    print(f"perf gate: all {len(gated)} gated claims hold (rows={rows})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
