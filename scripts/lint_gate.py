#!/usr/bin/env python
"""Invariant-lint gate: the engine's conventional disciplines,
machine-enforced.

Runs the AST-based invariant linter (``repro.analysis.lint``) over
``src/repro`` with the committed baseline (``lint_baseline.json``) and
fails — exit code 1 — on any new violation of:

* ``copy-discipline``   — boundary-copy-exactly-once on the read path,
* ``lock-discipline``   — lock-then-mutate on tables, no fsync/replace
  under an RWLock,
* ``ddl-in-transaction``— table/index DDL outside transaction bodies,
* ``except-hygiene``    — no bare/silently-swallowed broad excepts in
  the engine and system layers,
* ``api-boundary``      — public Query/JoinQuery methods never leak
  zero-copy row references.

Called from scripts/check.sh (before the test suite, so a rule
violation fails in seconds) and as a dedicated CI step, mirroring
``scripts/perf_gate.py`` semantics.

Usage: PYTHONPATH=src python scripts/lint_gate.py [--format text|json]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.lint import Baseline, render_json, render_text, rule_ids, run_lint

#: The rule pack this gate expects; a drifted registry fails loudly
#: instead of silently gating fewer invariants.
GATED_RULES = (
    "api-boundary",
    "copy-discipline",
    "ddl-in-transaction",
    "except-hygiene",
    "lock-discipline",
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    as_json = "--format" in argv and "json" in argv
    registered = tuple(rule_ids())
    if registered != GATED_RULES:
        print(
            f"lint gate: expected rule pack {GATED_RULES}, found "
            f"{registered} — gate out of sync with repro.analysis.lint"
        )
        return 1
    baseline = Baseline.load(REPO_ROOT / "lint_baseline.json")
    result = run_lint([REPO_ROOT / "src" / "repro"], baseline=baseline)
    print(render_json(result) if as_json else render_text(result))
    if not result.clean:
        print(f"lint gate: {len(result.findings)} NEW violation(s)")
        return 1
    print(
        f"lint gate: all {len(GATED_RULES)} invariant rules hold "
        f"({result.files_scanned} files, {len(result.baselined)} baselined)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
