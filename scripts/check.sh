#!/usr/bin/env bash
# Tier-1 check: the full test suite plus an EXP-ST smoke run, so
# planner/store regressions fail fast with the experiment's own claims
# (index paths beat scans, planned joins beat materializing hash_join,
# warm plan cache beats cold planning, group commit beats per-commit
# fsync, snapshot readers stay untorn, crash recovery matches the
# committed state), plus durability smokes: crash recovery of a WAL
# with a torn tail via the CLI, recovery across a rotated multi-segment
# WAL (with incremental-checkpoint pruning), and the concurrent-session
# driver.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# invariant-lint gate FIRST: AST rule violations (copy/lock/DDL/except/
# API-boundary disciplines) fail in seconds, before the test suite runs
python scripts/lint_gate.py

python -m pytest -x -q
# EXP-ST smoke; store_ops.run() ends with Database.verify(), which
# cross-checks indexes, maintained counters, and plan-cache generations.
# The result JSON is saved so CI can publish it as a bench artifact.
bench_json="${BENCH_JSON:-exp-st-bench.json}"
python -m repro run-experiment EXP-ST --fast --save "$bench_json"

# perf-regression smoke gate: the zero-copy read-path claim subset
# (point query, view-indexed read, warm plan cache, O(1) statistics)
# fails the merge on regression even below functional-test visibility
python scripts/perf_gate.py

# recovery smoke: a durability directory whose WAL ends in a torn
# (crash-truncated) record must recover the committed prefix, repair
# the tail, and verify clean — via the CLI, exit code gates the merge.
fixture_dir="$(mktemp -d)"
trap 'rm -rf "$fixture_dir"' EXIT
python - "$fixture_dir" <<'PY'
import sys
from pathlib import Path
from repro.store import Column, DataType, Database, Schema

state = Path(sys.argv[1]) / "state"
db = Database.open(state, fsync="never")
table = db.create_table(
    "items",
    Schema([Column("id", DataType.INT), Column("v", DataType.TEXT)], primary_key="id"),
)
for i in range(20):
    with db.transaction():
        table.insert({"v": f"v{i}"})
db.checkpoint()
for i in range(5):
    table.insert({"v": f"post-{i}"})
db.close()
# simulate a crash mid-append: a half-written record at the tail of
# the ACTIVE segment (wal.log is a directory of wal-NNNNNN.log files)
active = sorted((state / "wal.log").glob("wal-*.log"))[-1]
with active.open("ab") as handle:
    handle.write(b'00000000 {"lsn": 999, "txn": [["insert", "items"')
print(f"fixture ready: {state}")
PY
python -m repro store recover --dir "$fixture_dir/state" | tee "$fixture_dir/recover.out"
grep -q "discarded torn tail" "$fixture_dir/recover.out"
grep -q "verify: ok" "$fixture_dir/recover.out"

# segment-rotation smoke: a tiny segment budget forces many rotations;
# recovery must stitch the committed state back together from every
# segment, and an incremental checkpoint must prune the covered ones.
python - "$fixture_dir" <<'PY'
import sys
from pathlib import Path
from repro.store import Column, DataType, Database, Schema

state = Path(sys.argv[1]) / "segments"
db = Database.open(state, fsync="never", wal_segment_bytes=512)
table = db.create_table(
    "items",
    Schema([Column("id", DataType.INT), Column("v", DataType.TEXT)], primary_key="id"),
)
for i in range(40):
    with db.transaction():
        table.insert({"v": f"v{i}"})
segments = db.wal.segment_count
db.close()
assert segments > 3, f"expected rotation, got {segments} segment(s)"
print(f"fixture ready: {state} ({segments} segments)")
PY
python -m repro store recover --dir "$fixture_dir/segments" | tee "$fixture_dir/segments.out"
grep -q "replayed 41 committed records" "$fixture_dir/segments.out"
grep -Eq "from [0-9]+ wal segment" "$fixture_dir/segments.out"
grep -q "verify: ok" "$fixture_dir/segments.out"
python -m repro store checkpoint --dir "$fixture_dir/segments" --stats \
    | tee "$fixture_dir/segments-ckpt.out"
grep -q "kind: incremental" "$fixture_dir/segments-ckpt.out"

# concurrency smoke: 1 writer vs snapshot readers, zero torn reads
python -m repro store smoke --readers 3 --tasks 40

# same-table concurrency smoke: 4 writers on rows of ONE shared table
# (per-row locking), snapshot readers, consistency gate
python -m repro store smoke --readers 2 --tasks 40 --writers 4 --same-table
