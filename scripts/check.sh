#!/usr/bin/env bash
# Tier-1 check: the full test suite plus an EXP-ST smoke run, so
# planner/store regressions fail fast with the experiment's own claims
# (index paths beat scans, planned joins beat materializing hash_join,
# warm plan cache beats cold planning).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q
python -m repro run-experiment EXP-ST --fast
