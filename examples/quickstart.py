#!/usr/bin/env python3
"""Quickstart: improve tagging quality of an under-tagged corpus.

Generates a Delicious-like corpus (heavy-tailed popularity — most
resources barely tagged), then spends a budget of 400 tagging tasks
with the paper's recommended FP-MU strategy, and reports the quality
improvement against the free-choice baseline.

Run:  python examples/quickstart.py
"""

from repro import AllocationEngine, QualityBoard, make_delicious_like, make_strategy
from repro.datasets import dataset_report
from repro.rng import RngRegistry

BUDGET = 400
SEED = 7


def run_strategy(name: str) -> float:
    data = make_delicious_like(
        n_resources=120, initial_posts_total=1200, master_seed=SEED,
        population_size=80,
    )
    corpus = data.provider_corpus
    targets = data.dataset.oracle_targets()
    engine = AllocationEngine(
        corpus,
        data.dataset.population,
        make_strategy(name),
        budget=BUDGET,
        board=QualityBoard(corpus),
        oracle_targets=targets,
        rng=RngRegistry(SEED).stream(f"engine.{name}"),
        record_every=100,
    )
    result = engine.run()
    print(
        f"  {name:6s}: oracle quality {result.initial_oracle:.3f} -> "
        f"{result.final_oracle:.3f}  (improvement {result.oracle_improvement:+.3f})"
    )
    return result.oracle_improvement


def main() -> None:
    data = make_delicious_like(
        n_resources=120, initial_posts_total=1200, master_seed=SEED,
        population_size=80,
    )
    print("The starting corpus (note the popularity skew):\n")
    print(dataset_report(data.provider_corpus))
    print(f"\nSpending a budget of {BUDGET} tagging tasks:\n")
    fc = run_strategy("fc")
    hybrid = run_strategy("fp-mu")
    print(
        f"\nFP-MU extracted {hybrid / fc:.1f}x the quality improvement of "
        "letting taggers choose freely."
    )


if __name__ == "__main__":
    main()
