#!/usr/bin/env python3
"""The demo's audience-participation mode (Sec. IV).

Attendees join as providers and taggers.  Here a provider publishes a
small workload; "audience" taggers (simulated, as the paper's fallback)
pick projects by pay and provider approval rate, submit posts directly,
get approved or rejected by the provider policy, and earn incentives.

Run:  python examples/audience_demo.py
"""

import numpy as np

from repro.datasets import make_delicious_like
from repro.system import ITagSystem, tagger_projects_screen, tagging_screen

SEED = 31


def main() -> None:
    data = make_delicious_like(
        n_resources=20, initial_posts_total=120, master_seed=SEED,
        population_size=30,
    )
    system = ITagSystem(master_seed=SEED)
    provider = system.register_provider("conference-demo")
    project = system.create_project(
        provider, "audience-tagging", budget=80, pay_per_task=0.10,
        strategy="fp", platform="mturk",
    )
    system.upload_resources(project, data.provider_corpus)
    system.start_project(project, noise_model=data.dataset.noise_model)

    print(tagger_projects_screen(system), "\n")

    # Three audience members sign up as taggers.
    audience = [system.register_tagger(name) for name in ("ada", "ben", "eva")]
    rng = np.random.default_rng(SEED)
    corpus = system.corpus_of(project)
    earned = {tagger_id: 0.0 for tagger_id in audience}
    approved_count = 0
    for round_index in range(60):
        tagger_id = audience[round_index % len(audience)]
        # The audience member picks the least-tagged resource (they can
        # see post counts on the tagging screen) ...
        resource = min(corpus, key=lambda r: (r.n_posts, r.resource_id))
        # ... and submits a post: mostly sensible tags, sometimes junk.
        true_tags = list(np.flatnonzero(resource.theta))
        k = int(rng.integers(1, 4))
        tags = list(rng.choice(true_tags, size=min(k, len(true_tags)), replace=False))
        if rng.random() < 0.2:
            tags.append(int(rng.integers(0, len(corpus.vocabulary))))
        ok = system.submit_post(project, tagger_id, resource.resource_id, tags)
        if ok:
            approved_count += 1
            earned[tagger_id] += 0.10
        if system.projects.get(project)["state"] != "running":
            break

    print(tagging_screen(system, project, corpus.resource_ids()[0]), "\n")
    status = system.project_status(project)
    print(
        f"audience round done: {approved_count} approved posts, project "
        f"state {status['state']}, avg quality {status['avg_quality']:.3f}"
    )
    for name, tagger_id in zip(("ada", "ben", "eva"), audience):
        user = system.users.get(tagger_id)
        print(
            f"  {name}: {user['approved']} approved / {user['rejected']} rejected, "
            f"earned ${system.ledger.earned_by(tagger_id):.2f}"
        )
    system.ledger.verify_conservation()
    print("ledger conservation: OK")


if __name__ == "__main__":
    main()
