#!/usr/bin/env python3
"""A full provider campaign through the iTag system (Sec. III workflow).

A website owner ("alice") uploads her under-tagged URLs, funds a budget,
lets the Quality Manager push tasks to the simulated MTurk platform,
monitors quality live, promotes a lagging resource, stops a saturated
one, tops the budget up, and finally exports the tagged dataset.

Run:  python examples/delicious_campaign.py
"""

import tempfile
from pathlib import Path

from repro.datasets import make_delicious_like
from repro.system import (
    ITagSystem,
    export_project_csv,
    main_provider_screen,
    project_details_screen,
    resource_details_screen,
)

SEED = 21


def main() -> None:
    data = make_delicious_like(
        n_resources=40, initial_posts_total=300, master_seed=SEED,
        population_size=60,
    )
    system = ITagSystem(master_seed=SEED)
    alice = system.register_provider("alice")
    project = system.create_project(
        alice,
        "company-blog-urls",
        budget=200,
        pay_per_task=0.05,
        strategy="fp-mu",
        platform="mturk",
        description="URLs from our blog archive; tags are sparse and noisy",
    )
    system.upload_resources(project, data.provider_corpus)
    system.start_project(project, noise_model=data.dataset.noise_model)

    print(">>> first 100 tasks\n")
    outcomes = system.run_project(project, tasks=100)
    approved = sum(1 for outcome in outcomes if outcome.approved)
    print(f"ran {len(outcomes)} tasks, provider approved {approved}\n")
    print(main_provider_screen(system, alice), "\n")

    # Live controls: promote the worst resource, stop the best one.
    rows = system.resources.of_project(project)
    worst = min(rows, key=lambda row: (row["quality"], row["id"]))
    best = max(rows, key=lambda row: (row["quality"], -row["id"]))
    print(f">>> promoting {worst['name']} (quality {worst['quality']:.3f}), "
          f"stopping {best['name']} (quality {best['quality']:.3f})\n")
    system.promote_resource(project, worst["id"])
    system.stop_resource(project, best["id"])
    system.add_budget(project, 50)
    system.run_project(project, tasks=100)

    print(project_details_screen(system, project), "\n")
    print(resource_details_screen(system, project, worst["id"]), "\n")

    print(">>> exhausting the budget\n")
    system.run_project(project)
    status = system.project_status(project)
    print(
        f"final: state={status['state']} spent={status['budget_spent']}"
        f"/{status['budget_total']} quality={status['avg_quality']:.3f}"
    )
    system.ledger.verify_conservation()
    print("ledger conservation: OK")

    out = Path(tempfile.gettempdir()) / "itag_export.csv"
    export_project_csv(system, project, out)
    print(f"exported tagged resources to {out}")


if __name__ == "__main__":
    main()
