#!/usr/bin/env python3
"""Compare all allocation strategies and visualize quality vs budget.

Reproduces the demo's headline comparison (Sec. IV) at example scale:
one chart, five strategies, one winner — and shows how close the simple
strategies get to the oracle-optimal allocation.

Run:  python examples/strategy_tuning.py
"""

import numpy as np

from repro import AllocationEngine, QualityBoard, make_delicious_like, make_strategy
from repro.analysis import multi_line_plot, render_table
from repro.quality import AnalyticGain
from repro.rng import RngRegistry

SEED = 13
BUDGET = 800
CHECKPOINTS = list(range(0, BUDGET + 1, 100))


def main() -> None:
    curves: dict[str, list[float]] = {}
    finals = []
    for name in ("fc", "fp", "mu", "fp-mu", "optimal"):
        data = make_delicious_like(
            n_resources=120, initial_posts_total=1200, master_seed=SEED,
            population_size=80,
        )
        corpus = data.provider_corpus
        targets = data.dataset.oracle_targets()
        gain = (
            AnalyticGain(targets, data.dataset.mean_post_size)
            if name == "optimal"
            else None
        )
        engine = AllocationEngine(
            corpus,
            data.dataset.population,
            make_strategy(name, gain_model=gain),
            budget=BUDGET,
            board=QualityBoard(corpus),
            oracle_targets=targets,
            rng=RngRegistry(SEED).stream(f"engine.{name}"),
            record_every=50,
        )
        result = engine.run()
        xs, ys = result.series("oracle")
        curves[name] = list(np.interp(CHECKPOINTS, xs, ys))
        finals.append(
            [name, f"{result.final_oracle:.4f}", f"{result.oracle_improvement:+.4f}"]
        )
    print("Oracle quality vs budget (Sec. IV demonstration):\n")
    print(
        multi_line_plot(
            [float(b) for b in CHECKPOINTS], curves, width=70, height=14
        )
    )
    print()
    print(render_table(["strategy", "final quality", "improvement"], finals))


if __name__ == "__main__":
    main()
