#!/usr/bin/env python3
"""Platform choice for specialist content (Sec. I's scientific papers).

"Scientific papers resources will highly likely be getting better tags
with taggers from scientific communities other than MTurk."  This
example runs the same paper-tagging campaign against the MTurk-like
pool and the expert/social pool and compares quality and cost.

Run:  python examples/scientific_papers.py
"""

from repro import AllocationEngine, QualityBoard, make_delicious_like, make_strategy
from repro.analysis import render_table
from repro.crowd import MTURK_MIXTURE, SOCIAL_MIXTURE
from repro.rng import RngRegistry

SEED = 5
BUDGET = 300
PAY = 0.08  # specialist tagging pays more per task
FEES = {"mturk": 0.20, "social (experts)": 0.0}
POOLS = {"mturk": MTURK_MIXTURE, "social (experts)": SOCIAL_MIXTURE}


def main() -> None:
    rows = []
    for platform_name, mixture in POOLS.items():
        data = make_delicious_like(
            n_resources=60,
            initial_posts_total=300,
            master_seed=SEED,
            population_size=60,
            mixture=dict(mixture),
        )
        corpus = data.provider_corpus
        engine = AllocationEngine(
            corpus,
            data.dataset.population,
            make_strategy("fp-mu"),
            budget=BUDGET,
            board=QualityBoard(corpus),
            oracle_targets=data.dataset.oracle_targets(),
            rng=RngRegistry(SEED).stream(f"engine.{platform_name}"),
            record_every=BUDGET,
        )
        result = engine.run()
        fee = FEES[platform_name]
        money = BUDGET * PAY * (1.0 + fee)
        rows.append(
            [
                platform_name,
                f"{result.final_oracle:.4f}",
                f"{result.oracle_improvement:+.4f}",
                f"${money:.2f}",
                f"${money / max(result.oracle_improvement, 1e-9) / 100:.3f}",
            ]
        )
    print(
        "Tagging a corpus of scientific papers: the same FP-MU campaign\n"
        "through two worker pools (Sec. I platform-choice motivation):\n"
    )
    print(
        render_table(
            ["platform", "final quality", "improvement", "money spent",
             "cost / 0.01 quality"],
            rows,
        )
    )
    print(
        "\nThe expert pool wins on both quality and cost per unit of quality —"
        "\nexactly why iTag lets providers choose the platform per project."
    )


if __name__ == "__main__":
    main()
